//! Cycle timing configuration.

use mms_disk::{Bandwidth, DiskParams, Time};

/// Timing parameters of a cycle-based schedule (Section 2).
///
/// `k` tracks are read per stream per *read cycle*; `k'` tracks are
/// transmitted per stream per cycle; `k` must be an integer multiple of
/// `k'`, and the cycle length is `T_cyc = k'·B / b₀`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleConfig {
    /// The disk model parameters.
    pub disk: DiskParams,
    /// Object delivery bandwidth `b₀`.
    pub b0: Bandwidth,
    /// Tracks read per stream per read cycle.
    pub k: usize,
    /// Tracks transmitted per stream per cycle.
    pub k_prime: usize,
}

impl CycleConfig {
    /// Build a configuration; enforces `k % k' == 0` and `k' ≥ 1`.
    ///
    /// # Panics
    /// Panics on violated preconditions (these are programming errors, not
    /// runtime conditions: each scheme fixes `k` and `k'` statically).
    #[must_use]
    pub fn new(disk: DiskParams, b0: Bandwidth, k: usize, k_prime: usize) -> Self {
        assert!(k_prime >= 1, "k' must be at least 1");
        assert!(
            k.is_multiple_of(k_prime),
            "k ({k}) must be an integer multiple of k' ({k_prime})"
        );
        CycleConfig {
            disk,
            b0,
            k,
            k_prime,
        }
    }

    /// Cycle length `T_cyc = k'·B / b₀`.
    #[must_use]
    pub fn t_cyc(&self) -> Time {
        self.disk.cycle_time(self.k_prime, self.b0)
    }

    /// Cycles between consecutive read cycles of one stream, `k / k'`.
    #[must_use]
    pub fn read_period(&self) -> usize {
        self.k / self.k_prime
    }

    /// Per-disk, per-cycle slot capacity: the number of track reads that
    /// fit in one cycle, `max r: τ_seek + r·τ_trk ≤ T_cyc`.
    #[must_use]
    pub fn slots_per_disk(&self) -> usize {
        self.disk.slots_per_cycle(self.t_cyc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_raid_config_c5_mpeg1() {
        // Table 1 parameters, C = 5: k = k' = 4.
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            4,
            4,
        );
        // T_cyc = 4 * 0.05 / 0.1875 = 1.0667 s.
        assert!((cfg.t_cyc().as_secs() - 4.0 * 0.05 / 0.1875).abs() < 1e-12);
        assert_eq!(cfg.read_period(), 1);
        // slots = floor((1066.7 - 25) / 20) = 52.
        assert_eq!(cfg.slots_per_disk(), 52);
    }

    #[test]
    fn staggered_config_c5_mpeg1() {
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            4,
            1,
        );
        assert_eq!(cfg.read_period(), 4);
        // T_cyc = 0.2667 s; slots = floor((266.7 - 25)/20) = 12.
        assert_eq!(cfg.slots_per_disk(), 12);
    }

    #[test]
    fn nonclustered_config() {
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            1,
            1,
        );
        assert_eq!(cfg.read_period(), 1);
        assert_eq!(cfg.slots_per_disk(), 12);
    }

    #[test]
    #[should_panic(expected = "integer multiple")]
    fn k_must_divide() {
        let _ = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            5,
            2,
        );
    }
}
