//! Non-clustered scheduling with a buffer pool (Section 3).
//!
//! Normal mode reads only what the next cycle delivers (`k = k' = 1`);
//! parity is *not* read, so buffering drops to 2 tracks per stream. When a
//! disk fails, the affected cluster transitions to degraded mode (entire
//! parity group read at once, buffered at a shared buffer server) and a
//! bounded number of tracks is lost during the transition — the scenarios
//! of Figures 6 and 7, both of which this module reproduces exactly.

use crate::cycle::CycleConfig;
use crate::plan::{CyclePlan, Delivery, LossReason, LostBlock, PlannedRead, ReadPurpose};
use crate::streams::{StreamId, StreamInfo};
use crate::traits::{AdmissionError, FailureReport, PlanStability, SchemeKind, SchemeScheduler};
use mms_buffer::{BufferPool, BufferServerPool, OwnerId};
use mms_disk::DiskId;
use mms_layout::{BlockAddr, Catalog, ClusterId, ClusteredLayout, Layout, ObjectId};
use std::collections::{BTreeMap, BTreeSet};

/// How a cluster transitions to degraded mode when one of its disks fails
/// (Section 3 describes both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionPolicy {
    /// The straightforward shift of Figure 6: "when a disk fails the
    /// schedule is changed to a complete Streaming RAID type schedule for
    /// this cluster" — every in-flight group's remaining tracks move to
    /// the failure cycle; groups that cannot be fully reconstructed are
    /// abandoned, and moved reads may displace scheduled ones when slots
    /// are full.
    Simple,
    /// The alternate scheme of Figure 7: "delay early reading of tracks
    /// … until the cycle in which they are needed", buffering a running
    /// XOR of already-delivered tracks. Loses strictly fewer tracks.
    Delayed,
}

impl TransitionPolicy {
    /// The policy's lowercase label, used in telemetry events.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TransitionPolicy::Simple => "simple",
            TransitionPolicy::Delayed => "delayed",
        }
    }
}

/// Per-stream state. All fields are scalars, so the snapshot taken by
/// `plan_cycle_into` is a plain copy — no heap traffic on the hot path.
#[derive(Debug, Clone, Copy)]
struct NcStream {
    object: ObjectId,
    start_cluster: u32,
    groups: u64,
    tracks: u64,
    start_cycle: u64,
    class: (u32, u32),
    delivered: u64,
    lost: u64,
}

/// Degraded-cluster state. Failure positions beyond the first are kept
/// as a bitmask (positions are within one cluster, bounded well below
/// 128) so the struct is `Copy` and the planning hot path can snapshot
/// it without touching the heap.
#[derive(Debug, Clone, Copy)]
struct Degraded {
    /// Failed disk position within the cluster (`C−1` = parity disk).
    failed_pos: u32,
    /// Cycle from which the failure is effective.
    since: u64,
    /// Second failure positions (catastrophic), one bit per position.
    also_failed: u128,
}

impl Degraded {
    /// Does the bitmask of *additional* failures contain `pos`?
    fn also_contains(self, pos: u32) -> bool {
        self.also_failed & (1u128 << pos) != 0
    }

    /// Every failed position (first and subsequent) as one bitmask.
    fn all_failed_mask(self) -> u128 {
        self.also_failed | (1u128 << self.failed_pos)
    }
}

/// The Non-clustered scheduler (`k = k' = 1`).
#[derive(Debug)]
pub struct NonClusteredScheduler {
    config: CycleConfig,
    catalog: Catalog<ClusteredLayout>,
    policy: TransitionPolicy,
    streams: BTreeMap<StreamId, NcStream>,
    degraded: BTreeMap<ClusterId, Degraded>,
    /// Blocks that will never be delivered, keyed by delivery cycle.
    pending_losses: BTreeMap<u64, Vec<LostBlock>>,
    /// Normal-schedule reads cancelled by a transition (moved or lost):
    /// `(stream, group, index)`.
    suppressed: BTreeSet<(StreamId, u64, u32)>,
    /// Extra reads injected by a transition, keyed by cycle.
    extra_reads: BTreeMap<u64, Vec<(DiskId, PlannedRead)>>,
    /// Blocks that will be delivered as reconstructed: `(stream, group,
    /// index)`.
    reconstructions: BTreeSet<(StreamId, u64, u32)>,
    /// Buffer frees scheduled for future cycles (tracks read early are
    /// held until their delivery cycle), keyed by cycle; each entry frees
    /// one track and names the block so a displaced read can cancel its
    /// pending free.
    deferred_frees: BTreeMap<u64, Vec<(StreamId, BlockAddr)>>,
    /// Frees owed to buffer-server pools: (cycle → (cluster, stream,
    /// tracks)). Degraded-mode group buffers are charged to the cluster's
    /// attached server so §3's sizing (BF_SG/(D′/C) per server) is
    /// *enforced*, not just provisioned.
    server_frees: BTreeMap<u64, Vec<(u32, StreamId, usize)>>,
    buffers: BufferPool,
    servers: BufferServerPool,
    next_stream: u64,
    next_cycle: u64,
    /// Plan epoch: bumped by admissions, releases, failures and repairs.
    epoch: u64,
    /// Reusable per-cycle id snapshot (plan_cycle_into must not allocate).
    ids_scratch: Vec<StreamId>,
    /// Reusable list of blocks displaced past slot capacity this cycle.
    displaced_scratch: Vec<LostBlock>,
    /// Reusable list of parity reads displaced past slot capacity.
    displaced_parity_scratch: Vec<(StreamId, u64)>,
    /// Reusable partitions for the slot-capacity priority sort.
    keep_scratch: Vec<PlannedRead>,
    spill_scratch: Vec<PlannedRead>,
    /// Reusable staging area for rekeying `deferred_frees` in
    /// `fast_forward` (entries move, their block lists are not cloned).
    rekey_scratch: Vec<(u64, Vec<(StreamId, BlockAddr)>)>,
}

impl NonClusteredScheduler {
    /// Build a scheduler over a populated catalog.
    ///
    /// `buffer_servers` is the paper's `K_NC`: how many concurrently
    /// degraded clusters can be absorbed before service degrades.
    ///
    /// # Panics
    /// Panics unless `k = k' = 1`.
    #[must_use]
    pub fn new(
        config: CycleConfig,
        catalog: Catalog<ClusteredLayout>,
        policy: TransitionPolicy,
        buffer_servers: usize,
    ) -> Self {
        assert_eq!(config.k, 1, "Non-clustered requires k = 1");
        assert_eq!(config.k_prime, 1, "Non-clustered requires k' = 1");
        assert!(
            catalog.layout().geometry().disks_per_cluster() <= 128,
            "failure bitmask supports at most 128 disks per cluster"
        );
        // Each degraded cluster needs the staggered-group buffer profile:
        // C(C+1)/2 tracks per C−1 streams, bounded by slots per class.
        let c = catalog.layout().geometry().group_size() as usize;
        let per_server = (c * (c + 1) / 2) * config.slots_per_disk();
        NonClusteredScheduler {
            config,
            catalog,
            policy,
            streams: BTreeMap::new(),
            degraded: BTreeMap::new(),
            pending_losses: BTreeMap::new(),
            suppressed: BTreeSet::new(),
            extra_reads: BTreeMap::new(),
            reconstructions: BTreeSet::new(),
            deferred_frees: BTreeMap::new(),
            server_frees: BTreeMap::new(),
            buffers: BufferPool::unbounded(),
            servers: BufferServerPool::new(buffer_servers, per_server),
            next_stream: 0,
            next_cycle: 0,
            epoch: 0,
            ids_scratch: Vec::new(),
            displaced_scratch: Vec::new(),
            displaced_parity_scratch: Vec::new(),
            keep_scratch: Vec::new(),
            spill_scratch: Vec::new(),
            rekey_scratch: Vec::new(),
        }
    }

    /// The catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog<ClusteredLayout> {
        &self.catalog
    }

    /// The transition policy in force.
    #[must_use]
    pub fn policy(&self) -> TransitionPolicy {
        self.policy
    }

    /// The buffer-server pool (to observe degraded-cluster attachment).
    #[must_use]
    pub fn servers(&self) -> &BufferServerPool {
        &self.servers
    }

    fn bpg(&self) -> u64 {
        u64::from(self.catalog.layout().blocks_per_group())
    }

    fn blocks_in_group(&self, tracks: u64, g: u64) -> u32 {
        let bpg = self.bpg();
        (tracks - g * bpg).min(bpg) as u32
    }

    /// Admission class (see module docs of `streaming_raid` for the
    /// derivation): streams with equal read-phase residue and cluster
    /// trajectory contend for the same slots at every cycle.
    fn class_of(&self, h: u32, at_cycle: u64) -> (u32, u32) {
        let period = self.bpg();
        let nc = u64::from(self.catalog.layout().geometry().clusters());
        let r = (at_cycle % period) as u32;
        let q = at_cycle / period;
        let psi = ((u64::from(h) + nc - (q % nc)) % nc) as u32;
        (r, psi)
    }

    /// Stream's group-start cycle for group `g`.
    fn group_start(&self, s: &NcStream, g: u64) -> u64 {
        s.start_cycle + g * self.bpg()
    }

    /// The stream's (group, index) position at cycle `t`, if active.
    fn position_at(&self, s: &NcStream, t: u64) -> Option<(u64, u32)> {
        if t < s.start_cycle {
            return None;
        }
        let rel = t - s.start_cycle;
        let g = rel / self.bpg();
        if g >= s.groups {
            return None;
        }
        Some((g, (rel % self.bpg()) as u32))
    }

    fn record_loss(&mut self, loss: LostBlock) {
        mms_telemetry::counter!(
            "sched.tracks_lost",
            1,
            scheme = "NC",
            reason = loss.reason.as_str()
        );
        self.pending_losses
            .entry(loss.delivery_cycle)
            .or_default()
            .push(loss);
    }

    /// Is this group's read handled group-at-a-time (degraded steady
    /// state)? True when its cluster is degraded and either the policy is
    /// simple or the group starts after the C-cycle transition window.
    fn group_at_a_time(&self, cluster: ClusterId, group_start: u64) -> bool {
        let parity_pos = self.catalog.layout().geometry().disks_per_cluster() - 1;
        match self.degraded.get(&cluster) {
            None => false,
            Some(d) => {
                if d.failed_pos == parity_pos && d.also_failed == 0 {
                    // Parity-disk failure: data flow is unaffected; stay
                    // in normal per-cycle mode (unprotected).
                    false
                } else if group_start < d.since {
                    false // in-flight at failure: handled by transition
                } else {
                    match self.policy {
                        TransitionPolicy::Simple => true,
                        TransitionPolicy::Delayed => {
                            let window = u64::from(self.catalog.layout().geometry().group_size());
                            group_start >= d.since + window
                        }
                    }
                }
            }
        }
    }

    /// Is this group's read handled by delayed per-cycle reconstruction?
    fn delayed_window(&self, cluster: ClusterId, group_start: u64) -> bool {
        if self.policy != TransitionPolicy::Delayed {
            return false;
        }
        let parity_pos = self.catalog.layout().geometry().disks_per_cluster() - 1;
        match self.degraded.get(&cluster) {
            None => false,
            Some(d) => {
                if d.failed_pos == parity_pos {
                    return false;
                }
                let window = u64::from(self.catalog.layout().geometry().group_size());
                group_start >= d.since && group_start < d.since + window
            }
        }
    }

    /// Plan the group-at-a-time reads for a group starting now.
    #[allow(clippy::too_many_arguments)]
    fn plan_group_at_once(
        &mut self,
        plan: &mut CyclePlan,
        id: StreamId,
        s: &NcStream,
        g: u64,
        cycle: u64,
        degraded: &Degraded,
        parity_alive: bool,
    ) {
        let layout = *self.catalog.layout();
        let geometry = *layout.geometry();
        let blocks = self.blocks_in_group(s.tracks, g);
        let failed_positions = degraded.all_failed_mask();
        // A single data-disk failure with live parity is reconstructable;
        // anything more loses the affected blocks.
        let data_mask = (1u128 << (geometry.disks_per_cluster() - 1)) - 1;
        let data_failures = (failed_positions & data_mask).count_ones();
        let recoverable = parity_alive && data_failures <= 1;
        let mut reads = 0usize;
        for i in 0..blocks {
            let p = layout.data_placement(s.start_cluster, g, i);
            let pos = geometry.position_in_cluster(p.disk);
            if failed_positions & (1u128 << pos) != 0 {
                if recoverable {
                    self.reconstructions.insert((id, g, i));
                    self.deferred_frees
                        .entry(cycle + u64::from(i) + 1)
                        .or_default()
                        .push((id, BlockAddr::data(s.object, g, i)));
                } else {
                    self.record_loss(LostBlock {
                        stream: id,
                        addr: BlockAddr::data(s.object, g, i),
                        reason: LossReason::FailedDisk,
                        delivery_cycle: cycle + u64::from(i) + 1,
                    });
                }
                continue;
            }
            plan.push_read(
                p.disk,
                PlannedRead {
                    stream: id,
                    addr: BlockAddr::data(s.object, g, i),
                    purpose: ReadPurpose::Reconstruction,
                },
            );
            reads += 1;
            self.deferred_frees
                .entry(cycle + u64::from(i) + 1)
                .or_default()
                .push((id, BlockAddr::data(s.object, g, i)));
        }
        if recoverable && failed_positions & ((1u128 << blocks) - 1) != 0 {
            let pp = layout.parity_placement(s.start_cluster, g);
            plan.push_read(
                pp.disk,
                PlannedRead {
                    stream: id,
                    addr: BlockAddr::parity(s.object, g),
                    purpose: ReadPurpose::Parity,
                },
            );
            reads += 1;
            // The parity buffer morphs into the reconstructed block whose
            // free is registered above, so no separate free entry.
        }
        self.buffers
            .alloc(OwnerId(id.0), reads)
            .expect("unbounded pool never refuses an allocation");
        // Charge the degraded cluster's buffer server: the group is held
        // there until delivered ("a cluster in degraded mode sends the
        // data read from the disk to the buffer server"), draining one
        // track per delivery cycle — the staggered-group profile Eq. 14
        // sizes each server for. Overflow would be a sizing bug,
        // surfaced loudly.
        let cluster_id = layout.data_cluster(s.start_cluster, g).0;
        if let Some(server) = self.servers.server_for(cluster_id) {
            server
                .pool_mut()
                .alloc(mms_buffer::OwnerId(id.0), reads)
                .expect("buffer server sized for its cluster's degraded load");
            let mut remaining = reads;
            for i in 0..blocks {
                if remaining == 0 {
                    break;
                }
                // One buffer drains per delivery slot; lost blocks (never
                // buffered) skip their slot.
                let buffered = {
                    let p = layout.data_placement(s.start_cluster, g, i);
                    let pos = geometry.position_in_cluster(p.disk);
                    recoverable || failed_positions & (1u128 << pos) == 0
                };
                if buffered {
                    self.server_frees
                        .entry(cycle + u64::from(i) + 1)
                        .or_default()
                        .push((cluster_id, id, 1));
                    remaining -= 1;
                }
            }
        }
    }

    /// Apply the Figure-6 simple transition for one in-flight stream.
    fn simple_transition_for(
        &mut self,
        id: StreamId,
        s: &NcStream,
        g: u64,
        p: u32,
        since: u64,
        failed_pos: u32,
    ) {
        let layout = *self.catalog.layout();
        let geometry = *layout.geometry();
        let blocks = self.blocks_in_group(s.tracks, g);
        let t_g = self.group_start(s, g);
        for q in p..blocks {
            let delivery_cycle = t_g + u64::from(q) + 1;
            let addr = BlockAddr::data(s.object, g, q);
            let placement = layout.data_placement(s.start_cluster, g, q);
            let pos = geometry.position_in_cluster(placement.disk);
            self.suppressed.insert((id, g, q));
            if pos == failed_pos {
                // Unreconstructable: earlier members were delivered and
                // discarded before the failure.
                self.record_loss(LostBlock {
                    stream: id,
                    addr,
                    reason: LossReason::FailedDisk,
                    delivery_cycle,
                });
            } else {
                // Moved forward to the failure cycle (salvage attempt;
                // may be displaced there if slots are full).
                self.extra_reads.entry(since).or_default().push((
                    placement.disk,
                    PlannedRead {
                        stream: id,
                        addr,
                        purpose: ReadPurpose::Delivery,
                    },
                ));
            }
        }
    }

    /// Apply the Figure-7 delayed transition for one in-flight stream.
    fn delayed_transition_for(
        &mut self,
        id: StreamId,
        s: &NcStream,
        g: u64,
        p: u32,
        failed_pos: u32,
    ) {
        let blocks = self.blocks_in_group(s.tracks, g);
        let t_g = self.group_start(s, g);
        // Only the block on the failed disk is lost (if not yet read);
        // everything else keeps its original schedule.
        if failed_pos < blocks && failed_pos >= p {
            self.suppressed.insert((id, g, failed_pos));
            self.record_loss(LostBlock {
                stream: id,
                addr: BlockAddr::data(s.object, g, failed_pos),
                reason: LossReason::FailedDisk,
                delivery_cycle: t_g + u64::from(failed_pos) + 1,
            });
        }
    }

    /// Plan the delayed-window reads for a group starting at `t_g`
    /// (failure-window groups under the delayed policy): normal per-cycle
    /// reads before the failed position, everything after it plus parity
    /// at the reconstruction deadline `t_g + f`.
    fn plan_delayed_group_events(
        &mut self,
        id: StreamId,
        s: &NcStream,
        g: u64,
        failed_pos: u32,
        parity_alive: bool,
    ) {
        let layout = *self.catalog.layout();
        let blocks = self.blocks_in_group(s.tracks, g);
        let t_g = self.group_start(s, g);
        if failed_pos >= blocks {
            return; // failed disk not used by this (partial) group
        }
        if !parity_alive {
            self.suppressed.insert((id, g, failed_pos));
            self.record_loss(LostBlock {
                stream: id,
                addr: BlockAddr::data(s.object, g, failed_pos),
                reason: LossReason::FailedDisk,
                delivery_cycle: t_g + u64::from(failed_pos) + 1,
            });
            return;
        }
        let deadline = t_g + u64::from(failed_pos);
        self.suppressed.insert((id, g, failed_pos));
        self.reconstructions.insert((id, g, failed_pos));
        // The XOR accumulator occupies one track from group start until
        // the reconstructed block is delivered.
        self.deferred_frees
            .entry(deadline + 1)
            .or_default()
            .push((id, BlockAddr::data(s.object, g, failed_pos)));
        self.extra_reads.entry(t_g).or_default().push((
            // Accumulator "allocation marker": zero-disk read is not
            // representable, so charge the buffer directly at plan time
            // via a sentinel handled in plan_cycle. Instead we charge it
            // here against the pool immediately if the group has already
            // started; otherwise plan_cycle charges it when t_g arrives.
            DiskId(u32::MAX),
            PlannedRead {
                stream: id,
                addr: BlockAddr::data(s.object, g, failed_pos),
                purpose: ReadPurpose::Reconstruction,
            },
        ));
        // Blocks after the failed position move up to the deadline.
        for q in (failed_pos + 1)..blocks {
            let placement = layout.data_placement(s.start_cluster, g, q);
            self.suppressed.insert((id, g, q));
            self.extra_reads.entry(deadline).or_default().push((
                placement.disk,
                PlannedRead {
                    stream: id,
                    addr: BlockAddr::data(s.object, g, q),
                    purpose: ReadPurpose::Reconstruction,
                },
            ));
            // Held from the deadline until delivery.
            self.deferred_frees
                .entry(t_g + u64::from(q) + 1)
                .or_default()
                .push((id, BlockAddr::data(s.object, g, q)));
        }
        // Parity at the deadline (absorbed into the reconstruction, so
        // its buffer is the accumulator's — no extra charge).
        let pp = layout.parity_placement(s.start_cluster, g);
        self.extra_reads.entry(deadline).or_default().push((
            pp.disk,
            PlannedRead {
                stream: id,
                addr: BlockAddr::parity(s.object, g),
                purpose: ReadPurpose::Parity,
            },
        ));
    }

    /// Register a newly staged object in the catalog (the tertiary →
    /// disk load path of Figure 1).
    pub fn register_object(
        &mut self,
        object: mms_layout::MediaObject,
    ) -> Result<(), mms_layout::CatalogError> {
        self.catalog.add(object).map(|_| ())
    }

    /// Retire an object from the catalog (the purge path), refusing while
    /// any stream is still delivering it.
    pub fn retire_object(&mut self, object: ObjectId) -> Result<(), crate::traits::RetireError> {
        let streams = self.streams.values().filter(|s| s.object == object).count();
        if streams > 0 {
            return Err(crate::traits::RetireError::InUse { object, streams });
        }
        self.catalog
            .remove(object)
            .map(|_| ())
            .map_err(|_| crate::traits::RetireError::NotFound { object })
    }
}

impl SchemeScheduler for NonClusteredScheduler {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::NonClustered
    }

    fn config(&self) -> &CycleConfig {
        &self.config
    }

    fn admit(&mut self, object: ObjectId, at_cycle: u64) -> Result<StreamId, AdmissionError> {
        assert!(at_cycle >= self.next_cycle, "cannot admit into the past");
        let placed = self
            .catalog
            .get(object)
            .map_err(|_| AdmissionError::UnknownObject { object })?;
        let class = self.class_of(placed.start_cluster, at_cycle);
        // Count only class members that still have reads at or after the
        // admission cycle: a stream whose final read has already been
        // issued no longer occupies its slot.
        let bpg = self.bpg();
        let load = self
            .streams
            .values()
            .filter(|s| s.class == class && s.start_cycle + s.groups * bpg > at_cycle)
            .count();
        if load >= self.config.slots_per_disk() {
            return Err(AdmissionError::AtCapacity {
                active: self.streams.len(),
                limit: self.stream_capacity(),
            });
        }
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        self.epoch += 1;
        self.streams.insert(
            id,
            NcStream {
                object,
                start_cluster: placed.start_cluster,
                groups: placed.groups,
                tracks: placed.object.tracks,
                start_cycle: at_cycle,
                class,
                delivered: 0,
                lost: 0,
            },
        );
        Ok(id)
    }

    fn stream_capacity(&self) -> usize {
        self.config.slots_per_disk()
            * self.bpg() as usize
            * self.catalog.layout().geometry().clusters() as usize
    }

    fn active_streams(&self) -> usize {
        self.streams.len()
    }

    fn stream_info(&self, id: StreamId) -> Option<StreamInfo> {
        self.streams.get(&id).map(|s| StreamInfo {
            id,
            object: s.object,
            admitted_at: s.start_cycle,
            groups: s.groups,
            next_group: (self.next_cycle.saturating_sub(s.start_cycle) / self.bpg()).min(s.groups),
            delivered_tracks: s.delivered,
            lost_tracks: s.lost,
        })
    }

    fn release(&mut self, id: StreamId) -> bool {
        let bpg = self.bpg();
        let Some(st) = self.streams.get_mut(&id) else {
            return false;
        };
        self.epoch += 1;
        // One block is read per cycle in normal mode, `bpg` cycles per
        // group, so the started-group count is the elapsed ceiling.
        let elapsed = self.next_cycle.saturating_sub(st.start_cycle);
        let started = elapsed.div_ceil(bpg);
        if started == 0 {
            // Nothing read yet: retire immediately. Transition state
            // keyed by this stream is tolerated by the delivery and
            // deferred-free paths, which ignore unknown streams.
            self.streams.remove(&id);
            self.buffers.free_all(OwnerId(id.0));
            return true;
        }
        // Truncate to the started group; its remaining blocks drain
        // (including any degraded-mode reconstruction already planned)
        // and the normal finish path retires the stream.
        st.groups = st.groups.min(started);
        true
    }

    fn plan_cycle_into(&mut self, cycle: u64, plan: &mut CyclePlan) {
        assert_eq!(cycle, self.next_cycle, "cycles must be planned in order");
        self.next_cycle += 1;
        plan.reset(cycle);
        let layout = *self.catalog.layout();
        let geometry = *layout.geometry();

        // 1. Normal-schedule reads + group-at-a-time + delayed-window
        //    planning for groups starting this cycle.
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        ids.extend(self.streams.keys().copied());
        for id in ids.iter().copied() {
            let s = self.streams[&id];
            let Some((g, i)) = self.position_at(&s, cycle) else {
                continue;
            };
            let blocks = self.blocks_in_group(s.tracks, g);
            let cluster = layout.data_cluster(s.start_cluster, g);
            let t_g = self.group_start(&s, g);

            if i == 0 {
                if self.group_at_a_time(cluster, t_g) {
                    let d = self
                        .degraded
                        .get(&cluster)
                        .copied()
                        .expect("group_at_a_time is only true for degraded clusters");
                    let parity_pos = geometry.disks_per_cluster() - 1;
                    let parity_alive = d.failed_pos != parity_pos && !d.also_contains(parity_pos);
                    self.plan_group_at_once(plan, id, &s, g, cycle, &d, parity_alive);
                    continue;
                }
                if self.delayed_window(cluster, t_g) {
                    let d = self
                        .degraded
                        .get(&cluster)
                        .copied()
                        .expect("delayed_window is only true for degraded clusters");
                    let parity_alive = d.failed_pos != geometry.disks_per_cluster() - 1;
                    self.plan_delayed_group_events(id, &s, g, d.failed_pos, parity_alive);
                    // Normal per-cycle reads still apply below for the
                    // non-suppressed positions.
                }
            }

            // Normal read of block (g, i), unless suppressed or this
            // group is handled group-at-a-time (its start planned all
            // reads already).
            if i < blocks
                && !self.group_at_a_time(cluster, t_g)
                && !self.suppressed.contains(&(id, g, i))
            {
                let p = layout.data_placement(s.start_cluster, g, i);
                let pos = geometry.position_in_cluster(p.disk);
                let failed_here = self
                    .degraded
                    .get(&cluster)
                    .map(|d| d.failed_pos == pos || d.also_contains(pos))
                    .unwrap_or(false);
                if failed_here {
                    // A normal read aimed at a failed disk with no
                    // transition plan covering it: lost.
                    self.record_loss(LostBlock {
                        stream: id,
                        addr: BlockAddr::data(s.object, g, i),
                        reason: LossReason::FailedDisk,
                        delivery_cycle: cycle + 1,
                    });
                } else {
                    plan.push_read(
                        p.disk,
                        PlannedRead {
                            stream: id,
                            addr: BlockAddr::data(s.object, g, i),
                            purpose: ReadPurpose::Delivery,
                        },
                    );
                    self.buffers
                        .alloc(OwnerId(id.0), 1)
                        .expect("unbounded pool never refuses an allocation");
                    self.deferred_frees
                        .entry(cycle + 1)
                        .or_default()
                        .push((id, BlockAddr::data(s.object, g, i)));
                }
            }
        }

        // 3. Inject transition extra reads for this cycle.
        if let Some(extras) = self.extra_reads.remove(&cycle) {
            for (disk, read) in extras {
                if disk == DiskId(u32::MAX) {
                    // XOR-accumulator charge marker.
                    self.buffers
                        .alloc(OwnerId(read.stream.0), 1)
                        .expect("unbounded pool never refuses an allocation");
                    continue;
                }
                plan.push_read(disk, read);
                self.buffers
                    .alloc(OwnerId(read.stream.0), 1)
                    .expect("unbounded pool never refuses an allocation");
                // Freed at the block's delivery cycle — registered by the
                // transition planner (deferred_frees). Parity reads are
                // absorbed into the reconstruction: free next cycle.
                if read.addr.kind == mms_layout::BlockKind::Parity {
                    self.deferred_frees
                        .entry(cycle + 1)
                        .or_default()
                        .push((read.stream, read.addr));
                }
            }
        }

        // 4. Slot-capacity enforcement with priorities: Reconstruction and
        //    Parity reads outrank plain Delivery reads; displaced Delivery
        //    reads are lost ("this will only occur if all the slots … are
        //    occupied"). If reconstruction demand alone exceeds a disk's
        //    slots (possible at full load around the transition-window
        //    boundary), the excess reconstruction reads are displaced too
        //    and their blocks are lost — the hardware budget is absolute.
        let cap = self.config.slots_per_disk();
        let mut displaced = std::mem::take(&mut self.displaced_scratch);
        displaced.clear();
        let mut displaced_parity = std::mem::take(&mut self.displaced_parity_scratch);
        displaced_parity.clear();
        let mut keep = std::mem::take(&mut self.keep_scratch);
        let mut spill = std::mem::take(&mut self.spill_scratch);
        for (_disk, reads) in plan.reads.iter_mut() {
            if reads.len() <= cap {
                continue;
            }
            // Stable partition: keep high-priority reads first.
            keep.clear();
            spill.clear();
            for r in reads.iter().copied() {
                if r.purpose != ReadPurpose::Delivery {
                    keep.push(r);
                } else {
                    spill.push(r);
                }
            }
            // Reconstruction overload: spill the most recently planned
            // high-priority reads beyond capacity.
            while keep.len() > cap {
                spill.push(
                    keep.pop()
                        .expect("loop condition guarantees keep is non-empty"),
                );
            }
            let mut room = cap.saturating_sub(keep.len());
            for r in spill.drain(..) {
                if room > 0 && r.purpose == ReadPurpose::Delivery {
                    keep.push(r);
                    room -= 1;
                    continue;
                }
                match r.addr.kind {
                    mms_layout::BlockKind::Data(ix) => {
                        let delivery_cycle = {
                            let st = &self.streams[&r.stream];
                            let bpg = u64::from(layout.blocks_per_group());
                            st.start_cycle + r.addr.group * bpg + u64::from(ix) + 1
                        };
                        displaced.push(LostBlock {
                            stream: r.stream,
                            addr: r.addr,
                            reason: LossReason::Displaced,
                            delivery_cycle,
                        });
                        // Undo the displaced read's buffer charge and
                        // cancel its pending free.
                        let _ = self.buffers.free(OwnerId(r.stream.0), 1);
                        if let Some(entries) = self.deferred_frees.get_mut(&delivery_cycle) {
                            if let Some(jx) = entries
                                .iter()
                                .position(|(sid, a)| *sid == r.stream && *a == r.addr)
                            {
                                entries.swap_remove(jx);
                            }
                        }
                        // A lost reconstruction target is no longer
                        // reconstructed.
                        self.reconstructions.remove(&(r.stream, r.addr.group, ix));
                    }
                    mms_layout::BlockKind::Parity => {
                        // Losing the parity read loses the block it was
                        // fetched to rebuild.
                        displaced_parity.push((r.stream, r.addr.group));
                        let _ = self.buffers.free(OwnerId(r.stream.0), 1);
                    }
                }
            }
            debug_assert!(keep.len() <= cap);
            reads.clear();
            reads.extend_from_slice(&keep);
        }
        self.keep_scratch = keep;
        self.spill_scratch = spill;
        for (sid, group) in displaced_parity.drain(..) {
            // Find the reconstruction this parity read was serving.
            let target = self
                .reconstructions
                .iter()
                .find(|(s2, g2, _)| *s2 == sid && *g2 == group)
                .copied();
            if let Some((_, _, ix)) = target {
                self.reconstructions.remove(&(sid, group, ix));
                if let Some(st) = self.streams.get(&sid) {
                    let bpg = u64::from(layout.blocks_per_group());
                    let delivery_cycle = st.start_cycle + group * bpg + u64::from(ix) + 1;
                    displaced.push(LostBlock {
                        stream: sid,
                        addr: BlockAddr::data(st.object, group, ix),
                        reason: LossReason::Displaced,
                        delivery_cycle,
                    });
                }
            }
        }
        for loss in displaced.drain(..) {
            self.record_loss(loss);
        }
        self.displaced_scratch = displaced;
        self.displaced_parity_scratch = displaced_parity;

        // Deliveries and hiccups: block (g, q) is delivered at
        //    `t_g + q + 1` unless recorded lost.
        let losses_now = self.pending_losses.remove(&cycle).unwrap_or_default();
        for loss in losses_now.iter().copied() {
            if let Some(st) = self.streams.get_mut(&loss.stream) {
                st.lost += 1;
            }
            plan.hiccups.push(loss);
        }
        // Whether block (id, g, q) is among this cycle's losses. The list
        // is tiny (bounded by one loss per stream per cycle), so a linear
        // scan beats building a set — and allocates nothing.
        let is_lost = |id: StreamId, g: u64, q: u32| {
            losses_now.iter().any(|l| match l.addr.kind {
                mms_layout::BlockKind::Data(ix) => l.stream == id && l.addr.group == g && ix == q,
                mms_layout::BlockKind::Parity => false,
            })
        };
        for id in ids.iter().copied() {
            let Some(s) = self.streams.get(&id).copied() else {
                continue;
            };
            if cycle == 0 || cycle < s.start_cycle + 1 {
                continue;
            }
            let rel = cycle - s.start_cycle - 1;
            let g = rel / self.bpg();
            let q = (rel % self.bpg()) as u32;
            if g >= s.groups {
                continue;
            }
            let blocks = self.blocks_in_group(s.tracks, g);
            if q < blocks && !is_lost(id, g, q) {
                plan.deliveries.push(Delivery {
                    stream: id,
                    addr: BlockAddr::data(s.object, g, q),
                    reconstructed: self.reconstructions.remove(&(id, g, q)),
                });
                let st = self
                    .streams
                    .get_mut(&id)
                    .expect("delivery loop checks the stream is still live above");
                st.delivered += 1;
            }
            // Stream finishes after its final group's last real block's
            // delivery slot (partial groups leave trailing idle slots).
            if g + 1 == s.groups && q + 1 >= blocks {
                plan.finished.push(id);
                self.streams.remove(&id);
                self.buffers.free_all(OwnerId(id.0));
            }
        }

        // End of cycle: release the buffers of blocks whose delivery slot
        // was this cycle (they stay resident while being transmitted, so
        // the pool's high-water mark measures true peak occupancy).
        if let Some(frees) = self.deferred_frees.remove(&cycle) {
            for (id, _addr) in frees {
                // The stream may already have finished (free_all ran).
                let _ = self.buffers.free(OwnerId(id.0), 1);
            }
        }
        if let Some(frees) = self.server_frees.remove(&cycle) {
            for (cluster, id, n) in frees {
                if let Some(server) = self.servers.server_for(cluster) {
                    // The server may have been detached (repair resets
                    // its pool), in which case there is nothing to free.
                    let _ = server.pool_mut().free(mms_buffer::OwnerId(id.0), n);
                }
            }
        }
        self.ids_scratch = ids;
    }

    fn on_disk_failure(&mut self, disk: DiskId, cycle: u64, _mid_cycle: bool) -> FailureReport {
        self.epoch += 1;
        let geometry = *self.catalog.layout().geometry();
        let cluster = geometry.cluster_of(disk);
        let pos = geometry.position_in_cluster(disk);
        let mut report = FailureReport {
            degraded_clusters: vec![cluster],
            ..FailureReport::default()
        };

        if let Some(d) = self.degraded.get_mut(&cluster) {
            // Second failure in one cluster: catastrophic.
            d.also_failed |= 1u128 << pos;
            report.catastrophic = true;
            let mask = d.all_failed_mask();
            let failed = (0..geometry.disks_per_cluster())
                .filter(|&p| mask & (1u128 << p) != 0)
                .map(|p| geometry.disk_at(cluster, p));
            report.data_loss_tracks = crate::traits::data_tracks_on_disks(&self.catalog, failed);
            mms_telemetry::event!(
                mms_telemetry::Level::Info,
                "mode_transition",
                scheme = "NC",
                cluster = cluster.0,
                cycle = cycle,
                from = "degraded",
                to = "catastrophic",
                policy = self.policy.as_str()
            );
            return report;
        }
        self.degraded.insert(
            cluster,
            Degraded {
                failed_pos: pos,
                since: cycle,
                also_failed: 0,
            },
        );
        mms_telemetry::event!(
            mms_telemetry::Level::Info,
            "mode_transition",
            scheme = "NC",
            cluster = cluster.0,
            cycle = cycle,
            from = "normal",
            to = "degraded",
            policy = self.policy.as_str()
        );

        // Attach a buffer server; exhaustion = degradation of service:
        // drop the streams currently using this cluster.
        let parity_pos = geometry.disks_per_cluster() - 1;
        if pos != parity_pos && self.servers.attach(cluster.0).is_err() {
            let victims: Vec<StreamId> = self
                .streams
                .iter()
                .filter(|(_, s)| {
                    self.position_at(s, cycle)
                        .map(|(g, _)| {
                            self.catalog.layout().data_cluster(s.start_cluster, g) == cluster
                        })
                        .unwrap_or(false)
                })
                .map(|(&id, _)| id)
                .collect();
            for id in victims {
                self.streams
                    .remove(&id)
                    .expect("victim ids were taken from the live stream map");
                self.buffers.free_all(OwnerId(id.0));
                report.dropped_streams.push(id);
            }
            return report;
        }

        // Parity-disk failure: normal operation continues unprotected.
        if pos == parity_pos {
            return report;
        }

        // Transition for in-flight groups on this cluster.
        let losses_before: usize = self.pending_losses.values().map(Vec::len).sum();
        let ids: Vec<StreamId> = self.streams.keys().copied().collect();
        for id in ids {
            let s = self.streams[&id];
            let Some((g, p)) = self.position_at(&s, cycle) else {
                continue;
            };
            if self.catalog.layout().data_cluster(s.start_cluster, g) != cluster {
                continue;
            }
            if p == 0 {
                // Group starts exactly at the failure cycle: handled by
                // the steady rules (group-at-a-time or delayed window).
                continue;
            }
            match self.policy {
                TransitionPolicy::Simple => {
                    self.simple_transition_for(id, &s, g, p, cycle, pos);
                }
                TransitionPolicy::Delayed => {
                    self.delayed_transition_for(id, &s, g, p, pos);
                }
            }
        }

        // Collect the losses just recorded for the report (they are also
        // emitted as hiccups at their delivery cycles).
        let mut all: Vec<LostBlock> = self.pending_losses.values().flatten().copied().collect();
        report.lost = all.split_off(losses_before);
        report
    }

    fn on_disk_repair(&mut self, disk: DiskId, cycle: u64) {
        self.epoch += 1;
        let geometry = *self.catalog.layout().geometry();
        let cluster = geometry.cluster_of(disk);
        if let Some(d) = self.degraded.get_mut(&cluster) {
            let pos = geometry.position_in_cluster(disk);
            if d.failed_pos == pos && d.also_failed == 0 {
                self.degraded.remove(&cluster);
                let _ = self.servers.detach(cluster.0);
                mms_telemetry::event!(
                    mms_telemetry::Level::Info,
                    "mode_transition",
                    scheme = "NC",
                    cluster = cluster.0,
                    cycle = cycle,
                    from = "degraded",
                    to = "normal",
                    policy = self.policy.as_str()
                );
            } else {
                d.also_failed &= !(1u128 << pos);
            }
        }
    }

    fn buffer_in_use(&self) -> usize {
        self.buffers.in_use()
    }

    fn buffer_high_water(&self) -> usize {
        self.buffers.high_water()
    }

    fn plan_stability(&self, cycle: u64) -> PlanStability {
        // The plan repeats once every stream has walked every cluster:
        // bpg cycles per group × N_C clusters.
        let period = self.bpg() * u64::from(self.catalog.layout().geometry().clusters());
        // Stable only in fully-normal mode: no degraded cluster and no
        // transition debris in flight. `deferred_frees` is *not* a gate —
        // healthy per-cycle reads always hold one pending free.
        if !self.degraded.is_empty()
            || !self.pending_losses.is_empty()
            || !self.suppressed.is_empty()
            || !self.extra_reads.is_empty()
            || !self.reconstructions.is_empty()
            || !self.server_frees.is_empty()
        {
            return PlanStability { period, stable: 0 };
        }
        let mut stable = u64::MAX;
        for s in self.streams.values() {
            if cycle <= s.start_cycle {
                // Warm-up: the first cycle reads without delivering.
                return PlanStability { period, stable: 0 };
            }
            // End strictly before the final group's first read: partial
            // final groups break the one-delivery-per-cycle cadence.
            let final_group_start = s.start_cycle + (s.groups - 1) * self.bpg();
            stable = stable.min(final_group_start.saturating_sub(cycle));
        }
        PlanStability { period, stable }
    }

    fn fast_forward(&mut self, cycles: u64) {
        debug_assert!(self.degraded.is_empty(), "fast_forward in degraded mode");
        debug_assert_eq!(
            cycles % (self.bpg() * u64::from(self.catalog.layout().geometry().clusters())),
            0,
            "fast_forward span must be a whole plan rotation"
        );
        self.next_cycle += cycles;
        for s in self.streams.values_mut() {
            s.delivered += cycles;
        }
        // Pending buffer frees keep their relative schedule: shift every
        // key by the skipped span. Entries are moved, not cloned; the
        // staged addresses are only ever matched by same-cycle
        // displacement cancels, which cannot reference skipped cycles.
        let mut staged = std::mem::take(&mut self.rekey_scratch);
        staged.clear();
        while let Some((k, v)) = self.deferred_frees.pop_first() {
            staged.push((k + cycles, v));
        }
        for (k, v) in staged.drain(..) {
            self.deferred_frees.insert(k, v);
        }
        self.rekey_scratch = staged;
    }

    fn plan_epoch(&self) -> u64 {
        self.epoch
    }
}
