//! Streaming RAID scheduling (Section 2, after Tobagi et al.).

use crate::cycle::CycleConfig;
use crate::plan::{CyclePlan, Delivery, LossReason, LostBlock, PlannedRead, ReadPurpose};
use crate::streams::{StreamId, StreamInfo};
use crate::traits::{
    data_tracks_on_disks, emit_mode_transition, AdmissionError, FailureReport, PlanStability,
    SchemeKind, SchemeScheduler,
};
use mms_buffer::{BufferPool, OwnerId};
use mms_disk::DiskId;
use mms_layout::{Catalog, ClusterId, ClusteredLayout, Layout, ObjectId};
use std::collections::{BTreeMap, BTreeSet};

/// Per-stream state.
#[derive(Debug, Clone)]
struct SrStream {
    object: ObjectId,
    start_cluster: u32,
    groups: u64,
    start_cycle: u64,
    /// Cluster-phase class: streams with equal `(h − start_cycle) mod N_C`
    /// occupy the same cluster every cycle and therefore contend for the
    /// same slots forever.
    class: u32,
    delivered: u64,
    lost: u64,
    /// Blocks (by index) of the group read last cycle that must be
    /// reconstructed (were on a failed disk) or are hiccups (two failures).
    pending_reconstructed: Vec<u32>,
    pending_hiccups: Vec<u32>,
    /// Buffer tracks charged for the group read last cycle, released
    /// when that group's delivery completes.
    pending_buffered: usize,
}

/// The Streaming RAID scheduler: every active stream reads one **entire
/// parity group** — `C−1` data tracks plus the parity track — in each
/// cycle and transmits those data tracks in the next cycle
/// (`k = k' = C−1`).
///
/// Fault tolerance is immediate: "if a disk has failed then the missing
/// data that would have been read from that disk can be reconstructed
/// on-the-fly from the other data blocks and the parity block from the
/// same parity group" — no hiccup, at the cost of reading (and buffering)
/// parity during fault-free operation and of `2C` buffer tracks per
/// stream.
#[derive(Debug)]
pub struct StreamingRaidScheduler {
    config: CycleConfig,
    catalog: Catalog<ClusteredLayout>,
    streams: BTreeMap<StreamId, SrStream>,
    /// Active stream count per cluster-phase class.
    class_load: Vec<usize>,
    /// Failed disk positions per cluster.
    failed: BTreeMap<ClusterId, BTreeSet<u32>>,
    buffers: BufferPool,
    next_stream: u64,
    next_cycle: u64,
    catastrophic: bool,
    /// Plan epoch: bumped by admit/release/failure/repair (see
    /// [`SchemeScheduler::plan_epoch`]).
    epoch: u64,
    /// Reusable per-cycle id snapshot (plan_cycle_into must not allocate).
    ids_scratch: Vec<StreamId>,
    /// Reusable staging area for the groups read this cycle.
    incoming_scratch: Vec<(StreamId, Vec<u32>, Vec<u32>, usize)>,
    /// Recycled index vectors for reconstruction/hiccup lists.
    vec_pool: Vec<Vec<u32>>,
}

impl StreamingRaidScheduler {
    /// Build a scheduler over a populated catalog.
    ///
    /// # Panics
    /// Panics if `config.k != C−1` or `config.k_prime != C−1` — Streaming
    /// RAID is defined by that choice.
    #[must_use]
    pub fn new(config: CycleConfig, catalog: Catalog<ClusteredLayout>) -> Self {
        let c = catalog.layout().geometry().group_size() as usize;
        assert_eq!(config.k, c - 1, "Streaming RAID requires k = C−1");
        assert_eq!(config.k_prime, c - 1, "Streaming RAID requires k' = C−1");
        let classes = catalog.layout().geometry().clusters() as usize;
        StreamingRaidScheduler {
            config,
            catalog,
            streams: BTreeMap::new(),
            class_load: vec![0; classes],
            failed: BTreeMap::new(),
            buffers: BufferPool::unbounded(),
            next_stream: 0,
            next_cycle: 0,
            catastrophic: false,
            epoch: 0,
            ids_scratch: Vec::new(),
            incoming_scratch: Vec::new(),
            vec_pool: Vec::new(),
        }
    }

    /// The catalog (for integration with the simulator).
    #[must_use]
    pub fn catalog(&self) -> &Catalog<ClusteredLayout> {
        &self.catalog
    }

    fn clusters(&self) -> u64 {
        u64::from(self.catalog.layout().geometry().clusters())
    }

    /// Number of data blocks in group `g` of a stream (the final group may
    /// be partial).
    fn blocks_in_group(&self, object: mms_layout::ObjectId, g: u64) -> u32 {
        let bpg = u64::from(self.catalog.layout().blocks_per_group());
        let tracks = self
            .catalog
            .get(object)
            .expect("admitted object")
            .object
            .tracks;
        let remaining = tracks - g * bpg;
        remaining.min(bpg) as u32
    }

    /// Register a newly staged object in the catalog (the tertiary →
    /// disk load path of Figure 1).
    pub fn register_object(
        &mut self,
        object: mms_layout::MediaObject,
    ) -> Result<(), mms_layout::CatalogError> {
        self.catalog.add(object).map(|_| ())
    }

    /// Retire an object from the catalog (the purge path), refusing while
    /// any stream is still delivering it.
    pub fn retire_object(&mut self, object: ObjectId) -> Result<(), crate::traits::RetireError> {
        let streams = self.streams.values().filter(|s| s.object == object).count();
        if streams > 0 {
            return Err(crate::traits::RetireError::InUse { object, streams });
        }
        self.catalog
            .remove(object)
            .map(|_| ())
            .map_err(|_| crate::traits::RetireError::NotFound { object })
    }
}

impl SchemeScheduler for StreamingRaidScheduler {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::StreamingRaid
    }

    fn config(&self) -> &CycleConfig {
        &self.config
    }

    fn admit(&mut self, object: ObjectId, at_cycle: u64) -> Result<StreamId, AdmissionError> {
        assert!(at_cycle >= self.next_cycle, "cannot admit into the past");
        let placed = self
            .catalog
            .get(object)
            .map_err(|_| AdmissionError::UnknownObject { object })?;
        let nc = self.clusters();
        // Phase class: the cluster this stream occupies at cycle 0 of its
        // life, projected onto absolute cycles.
        let class = ((u64::from(placed.start_cluster) + nc - (at_cycle % nc)) % nc) as usize;
        let limit = self.config.slots_per_disk();
        if self.class_load[class] >= limit {
            return Err(AdmissionError::AtCapacity {
                active: self.streams.len(),
                limit: self.stream_capacity(),
            });
        }
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        self.class_load[class] += 1;
        self.epoch += 1;
        self.streams.insert(
            id,
            SrStream {
                object,
                start_cluster: placed.start_cluster,
                groups: placed.groups,
                start_cycle: at_cycle,
                class: class as u32,
                delivered: 0,
                lost: 0,
                pending_reconstructed: Vec::new(),
                pending_hiccups: Vec::new(),
                pending_buffered: 0,
            },
        );
        Ok(id)
    }

    fn stream_capacity(&self) -> usize {
        self.config.slots_per_disk() * self.clusters() as usize
    }

    fn active_streams(&self) -> usize {
        self.streams.len()
    }

    fn stream_info(&self, id: StreamId) -> Option<StreamInfo> {
        self.streams.get(&id).map(|s| StreamInfo {
            id,
            object: s.object,
            admitted_at: s.start_cycle,
            groups: s.groups,
            next_group: self.next_cycle.saturating_sub(s.start_cycle).min(s.groups),
            delivered_tracks: s.delivered,
            lost_tracks: s.lost,
        })
    }

    fn release(&mut self, id: StreamId) -> bool {
        let Some(st) = self.streams.get_mut(&id) else {
            return false;
        };
        self.epoch += 1;
        // One group is read per cycle, so `elapsed` groups are resident.
        let elapsed = self.next_cycle.saturating_sub(st.start_cycle);
        if elapsed == 0 {
            // Nothing read yet: retire immediately, returning the slot.
            let class = st.class as usize;
            self.class_load[class] -= 1;
            self.streams.remove(&id);
            self.buffers.free_all(OwnerId(id.0));
            return true;
        }
        // Truncate to what was read; the normal finish path in pass 2
        // delivers the final resident group and retires the stream.
        st.groups = st.groups.min(elapsed);
        true
    }

    fn plan_cycle_into(&mut self, cycle: u64, plan: &mut CyclePlan) {
        assert_eq!(cycle, self.next_cycle, "cycles must be planned in order");
        self.next_cycle += 1;
        plan.reset(cycle);
        let layout = self.catalog.layout();
        let geometry = *layout.geometry();

        // Snapshot stream ids into the reusable scratch so the passes
        // can mutate `self.streams` without holding a borrow on it.
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        ids.extend(self.streams.keys().copied());

        // Pass 1 — reads and allocations for every stream. All of a
        // cycle's reads are in flight while the previous groups are
        // still being transmitted, so allocations logically precede the
        // frees of the same cycle; the pool's high-water mark then
        // measures the paper's 2C-per-stream peak.
        let mut incoming = std::mem::take(&mut self.incoming_scratch);
        incoming.clear();
        for id in ids.iter().copied() {
            // Copy the scalar fields out of the stream entry instead of
            // cloning it: the pending_* vectors make a full clone allocate.
            let (object, start_cluster, groups, start_cycle) = {
                let s = &self.streams[&id];
                (s.object, s.start_cluster, s.groups, s.start_cycle)
            };
            if cycle < start_cycle {
                continue;
            }
            let read_group = cycle - start_cycle;
            if read_group >= groups {
                continue;
            }
            let mut reconstructed = self.vec_pool.pop().unwrap_or_default();
            reconstructed.clear();
            let mut hiccups = self.vec_pool.pop().unwrap_or_default();
            hiccups.clear();
            let blocks = self.blocks_in_group(object, read_group);
            let cluster = layout.data_cluster(start_cluster, read_group);
            let failed = self.failed.get(&cluster);
            let parity_pos = geometry.disks_per_cluster() - 1;
            let parity_ok = failed.is_none_or(|f| !f.contains(&parity_pos));
            let mut reads = 0usize;
            for i in 0..blocks {
                let p = layout.data_placement(start_cluster, read_group, i);
                let pos = geometry.position_in_cluster(p.disk);
                if failed.is_some_and(|f| f.contains(&pos)) {
                    // Single failure + live parity: on-the-fly
                    // reconstruction; otherwise a hiccup.
                    if failed.map_or(0, std::collections::BTreeSet::len) == 1 && parity_ok {
                        reconstructed.push(i);
                    } else {
                        hiccups.push(i);
                    }
                } else {
                    plan.push_read(
                        p.disk,
                        PlannedRead {
                            stream: id,
                            addr: mms_layout::BlockAddr::data(object, read_group, i),
                            purpose: ReadPurpose::Delivery,
                        },
                    );
                    reads += 1;
                }
            }
            if parity_ok {
                let pp = layout.parity_placement(start_cluster, read_group);
                plan.push_read(
                    pp.disk,
                    PlannedRead {
                        stream: id,
                        addr: mms_layout::BlockAddr::parity(object, read_group),
                        purpose: ReadPurpose::Parity,
                    },
                );
                reads += 1;
            }
            // The group occupies `reads` buffers (a reconstructed block
            // materializes in the parity buffer), held until its
            // delivery completes next cycle; the paper charges the full
            // 2C per stream, which this reproduces at steady state.
            self.buffers
                .alloc(OwnerId(id.0), reads)
                .expect("unbounded pool never refuses an allocation");
            incoming.push((id, reconstructed, hiccups, reads));
        }

        // Pass 2 — deliveries of the groups read last cycle, and frees.
        for id in ids.iter().copied() {
            // Shared borrow only — every push below targets `plan` or a
            // disjoint field, and the mutable re-borrow happens after.
            let Some(s) = self.streams.get(&id) else {
                continue;
            };
            if cycle < s.start_cycle + 1 {
                continue;
            }
            let read_group = cycle - s.start_cycle;
            let g = read_group - 1;
            if g >= s.groups {
                continue;
            }
            let blocks = self.blocks_in_group(s.object, g);
            for i in 0..blocks {
                let addr = mms_layout::BlockAddr::data(s.object, g, i);
                if s.pending_hiccups.contains(&i) {
                    plan.hiccups.push(LostBlock {
                        stream: id,
                        addr,
                        reason: LossReason::FailedDisk,
                        delivery_cycle: cycle,
                    });
                } else {
                    plan.deliveries.push(Delivery {
                        stream: id,
                        addr,
                        reconstructed: s.pending_reconstructed.contains(&i),
                    });
                }
            }
            let st = self.streams.get_mut(&id).expect("live stream");
            st.delivered += u64::from(blocks) - st.pending_hiccups.len() as u64;
            st.lost += st.pending_hiccups.len() as u64;
            // Release exactly what was charged when this group was read.
            let charged = st.pending_buffered;
            st.pending_buffered = 0;
            self.buffers
                .free(OwnerId(id.0), charged)
                .expect("allocated last cycle");
            if g + 1 == st.groups {
                // Final group delivered: stream finishes.
                plan.finished.push(id);
                let class = st.class as usize;
                self.class_load[class] -= 1;
                self.streams.remove(&id);
                self.buffers.free_all(OwnerId(id.0));
                continue;
            }
        }

        // Commit the just-read groups' reconstruction/hiccup state,
        // recycling the vectors the new state displaces (or carries,
        // for streams retired in pass 2).
        for (id, reconstructed, hiccups, buffered) in incoming.drain(..) {
            if let Some(st) = self.streams.get_mut(&id) {
                let old_rec = std::mem::replace(&mut st.pending_reconstructed, reconstructed);
                let old_hic = std::mem::replace(&mut st.pending_hiccups, hiccups);
                st.pending_buffered = buffered;
                self.vec_pool.push(old_rec);
                self.vec_pool.push(old_hic);
            } else {
                self.vec_pool.push(reconstructed);
                self.vec_pool.push(hiccups);
            }
        }
        self.incoming_scratch = incoming;
        self.ids_scratch = ids;

        // Sanity: no disk over capacity. Admission control guarantees it.
        let cap = self.config.slots_per_disk();
        debug_assert!(
            plan.reads.values().all(|v| v.len() <= cap),
            "slot overflow in Streaming RAID plan"
        );
    }

    fn on_disk_failure(&mut self, disk: DiskId, cycle: u64, _mid_cycle: bool) -> FailureReport {
        let geometry = *self.catalog.layout().geometry();
        let cluster = geometry.cluster_of(disk);
        let pos = geometry.position_in_cluster(disk);
        self.epoch += 1;
        let entry = self.failed.entry(cluster).or_default();
        entry.insert(pos);
        let catastrophic = entry.len() >= 2;
        self.catastrophic |= catastrophic;
        let data_loss_tracks = if catastrophic {
            let failed = entry.iter().map(|&p| geometry.disk_at(cluster, p));
            data_tracks_on_disks(&self.catalog, failed)
        } else {
            0
        };
        let (from, to) = if catastrophic {
            ("degraded", "catastrophic")
        } else {
            ("normal", "degraded")
        };
        emit_mode_transition(self.scheme(), cluster, cycle, from, to);
        FailureReport {
            degraded_clusters: vec![cluster],
            catastrophic,
            data_loss_tracks,
            ..FailureReport::default()
        }
    }

    fn on_disk_repair(&mut self, disk: DiskId, cycle: u64) {
        let geometry = *self.catalog.layout().geometry();
        let cluster = geometry.cluster_of(disk);
        let pos = geometry.position_in_cluster(disk);
        self.epoch += 1;
        if let Some(set) = self.failed.get_mut(&cluster) {
            set.remove(&pos);
            if set.is_empty() {
                self.failed.remove(&cluster);
                emit_mode_transition(self.scheme(), cluster, cycle, "degraded", "normal");
            }
        }
    }

    fn buffer_in_use(&self) -> usize {
        self.buffers.in_use()
    }

    fn buffer_high_water(&self) -> usize {
        self.buffers.high_water()
    }

    fn plan_stability(&self, cycle: u64) -> PlanStability {
        // Disk pattern repeats once every full rotation over the
        // clusters; a stream is steady from one cycle past its start
        // (read + deliver every cycle) until its final-group read.
        let period = self.clusters();
        if !self.failed.is_empty() {
            return PlanStability { period, stable: 0 };
        }
        let mut stable = u64::MAX;
        for s in self.streams.values() {
            if cycle <= s.start_cycle {
                return PlanStability { period, stable: 0 };
            }
            // The final group is read at start + groups − 1 (and may be
            // partial); the window must end before it.
            stable = stable.min((s.start_cycle + s.groups - 1).saturating_sub(cycle));
        }
        PlanStability { period, stable }
    }

    fn fast_forward(&mut self, cycles: u64) {
        debug_assert!(self.failed.is_empty(), "fast_forward in degraded mode");
        debug_assert_eq!(cycles % self.clusters(), 0, "not a whole rotation");
        self.next_cycle += cycles;
        // Every steady cycle delivers one full group per stream; the
        // pending_* lists and buffer charge are periodic and unchanged.
        let bpg = u64::from(self.catalog.layout().blocks_per_group());
        for s in self.streams.values_mut() {
            s.delivered += cycles * bpg;
        }
    }

    fn plan_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_disk::{Bandwidth, DiskParams};
    use mms_layout::{BandwidthClass, Geometry, MediaObject};

    fn make(disks: usize, c: usize, objects: &[(u64, u64)]) -> StreamingRaidScheduler {
        let geo = Geometry::clustered(disks, c).unwrap();
        let layout = ClusteredLayout::new(geo);
        let mut catalog = Catalog::new(layout, 100_000);
        for &(id, tracks) in objects {
            catalog
                .add(MediaObject::new(
                    ObjectId(id),
                    format!("o{id}"),
                    tracks,
                    BandwidthClass::Mpeg1,
                ))
                .unwrap();
        }
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            c - 1,
            c - 1,
        );
        StreamingRaidScheduler::new(cfg, catalog)
    }

    #[test]
    fn normal_operation_reads_whole_groups_and_delivers_next_cycle() {
        let mut s = make(10, 5, &[(0, 8)]); // 2 full groups
        let id = s.admit(ObjectId(0), 0).unwrap();
        let p0 = s.plan_cycle(0);
        // Group 0: 4 data reads on disks 0..3 + parity on disk 4.
        assert_eq!(p0.total_reads(), 5);
        assert!(p0.deliveries.is_empty());
        assert_eq!(p0.reads_on(DiskId(4)).len(), 1);
        assert_eq!(p0.reads_on(DiskId(4))[0].purpose, ReadPurpose::Parity);
        let p1 = s.plan_cycle(1);
        // Group 1 read on cluster 1; group 0 delivered.
        assert_eq!(p1.total_reads(), 5);
        assert!(p1.reads.keys().all(|d| d.0 >= 5));
        assert_eq!(p1.deliveries.len(), 4);
        assert!(p1
            .deliveries
            .iter()
            .all(|d| d.stream == id && !d.reconstructed));
        let p2 = s.plan_cycle(2);
        // Nothing left to read; group 1 delivered; stream finishes.
        assert_eq!(p2.total_reads(), 0);
        assert_eq!(p2.deliveries.len(), 4);
        assert_eq!(p2.finished, vec![id]);
        assert_eq!(s.active_streams(), 0);
    }

    #[test]
    fn buffer_peak_is_2c_per_stream() {
        let mut s = make(10, 5, &[(0, 40)]);
        s.admit(ObjectId(0), 0).unwrap();
        for t in 0..6 {
            s.plan_cycle(t);
        }
        // 2C = 10 tracks for C = 5.
        assert_eq!(s.buffer_high_water(), 10);
    }

    #[test]
    fn single_failure_is_masked_without_hiccups() {
        let mut s = make(10, 5, &[(0, 16)]); // 4 groups
        let id = s.admit(ObjectId(0), 0).unwrap();
        let r = s.on_disk_failure(DiskId(2), 0, false);
        assert!(!r.catastrophic);
        assert_eq!(r.degraded_clusters, vec![ClusterId(0)]);
        let p0 = s.plan_cycle(0);
        // Disk 2's block is skipped; 3 data + 1 parity read.
        assert_eq!(p0.total_reads(), 4);
        assert!(p0.reads_on(DiskId(2)).is_empty());
        let p1 = s.plan_cycle(1);
        // All 4 tracks still delivered; one was reconstructed.
        assert_eq!(p1.deliveries.len(), 4);
        assert!(p1.hiccups.is_empty());
        assert_eq!(p1.deliveries.iter().filter(|d| d.reconstructed).count(), 1);
        assert!(p1.deliveries.iter().all(|d| d.stream == id));
    }

    #[test]
    fn parity_disk_failure_is_harmless() {
        let mut s = make(10, 5, &[(0, 8)]);
        s.admit(ObjectId(0), 0).unwrap();
        let r = s.on_disk_failure(DiskId(4), 0, false);
        assert!(!r.catastrophic);
        let p0 = s.plan_cycle(0);
        // 4 data reads, no parity read possible.
        assert_eq!(p0.total_reads(), 4);
        let p1 = s.plan_cycle(1);
        assert_eq!(p1.deliveries.len(), 4);
        assert!(p1.hiccups.is_empty());
    }

    #[test]
    fn second_failure_in_cluster_is_catastrophic() {
        let mut s = make(10, 5, &[(0, 16)]);
        s.admit(ObjectId(0), 0).unwrap();
        assert!(!s.on_disk_failure(DiskId(1), 0, false).catastrophic);
        let r = s.on_disk_failure(DiskId(3), 0, false);
        assert!(r.catastrophic);
        let _ = s.plan_cycle(0);
        let p1 = s.plan_cycle(1);
        // Blocks on both failed disks hiccup; the other two deliver.
        assert_eq!(p1.hiccups.len(), 2);
        assert_eq!(p1.deliveries.len(), 2);
    }

    #[test]
    fn failures_in_different_clusters_are_tolerated() {
        let mut s = make(10, 5, &[(0, 16)]);
        s.admit(ObjectId(0), 0).unwrap();
        assert!(!s.on_disk_failure(DiskId(1), 0, false).catastrophic);
        assert!(!s.on_disk_failure(DiskId(6), 0, false).catastrophic);
        let _ = s.plan_cycle(0);
        for t in 1..5 {
            let p = s.plan_cycle(t);
            assert!(p.hiccups.is_empty(), "cycle {t}");
        }
    }

    #[test]
    fn repair_restores_normal_reads() {
        let mut s = make(10, 5, &[(0, 40)]);
        s.admit(ObjectId(0), 0).unwrap();
        s.on_disk_failure(DiskId(0), 0, false);
        let p0 = s.plan_cycle(0);
        assert_eq!(p0.total_reads(), 4);
        s.on_disk_repair(DiskId(0), 1);
        let _p1 = s.plan_cycle(1);
        let p2 = s.plan_cycle(2); // back on cluster 0
        assert_eq!(p2.total_reads(), 5);
    }

    #[test]
    fn admission_respects_slot_capacity() {
        let mut s = make(10, 5, &[(0, 400)]);
        let cap = s.stream_capacity();
        // Table-1 MPEG-1 SR: 52 slots * 2 clusters = 104.
        assert_eq!(cap, 104);
        let mut admitted = 0;
        for _ in 0..cap + 10 {
            if s.admit(ObjectId(0), 0).is_ok() {
                admitted += 1;
            }
        }
        // All streams start at cycle 0 with the same object (start cluster
        // 0), so they all share one class: only `slots` fit.
        assert_eq!(admitted, s.config().slots_per_disk());
    }

    #[test]
    fn stream_capacity_matches_eq8_shape() {
        // Eq. 8: N_SR = [B/(b0 τ_trk) − τ_seek/(τ_trk (C−1))] · D(C−1)/C
        // With Table 1 and D = 100, C = 5: 1041 (paper Table 2).
        let objs = vec![(0u64, 40u64)];
        let s = make(100, 5, &objs);
        // 52 slots/disk/cycle * 20 clusters = 1040; the analytic 1041.67
        // floors per-class here (52.08 -> 52), so we are within one slot
        // per cluster of Eq. 8.
        assert_eq!(s.stream_capacity(), 1040);
    }

    #[test]
    fn partial_final_group_delivers_short() {
        let mut s = make(10, 5, &[(0, 6)]); // groups: 4 + 2 tracks
        let id = s.admit(ObjectId(0), 0).unwrap();
        let p0 = s.plan_cycle(0);
        assert_eq!(p0.total_reads(), 5);
        let p1 = s.plan_cycle(1);
        assert_eq!(p1.total_reads(), 3); // 2 data + parity
        assert_eq!(p1.deliveries.len(), 4);
        let p2 = s.plan_cycle(2);
        assert_eq!(p2.deliveries.len(), 2);
        assert_eq!(p2.finished, vec![id]);
    }
}
