//! Per-cycle plans: the scheduler's output, executed by the simulator.

use crate::streams::StreamId;
use mms_disk::DiskId;
use mms_layout::BlockAddr;
use std::collections::BTreeMap;
use std::fmt;

/// Why a block is being read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPurpose {
    /// Data read for delivery on the normal schedule.
    Delivery,
    /// Parity read (fault-tolerance overhead).
    Parity,
    /// Data or parity read early to reconstruct a block on a failed disk.
    Reconstruction,
}

/// One track read planned for a specific disk in a specific cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedRead {
    /// The stream on whose behalf the read happens.
    pub stream: StreamId,
    /// The block to read.
    pub addr: BlockAddr,
    /// Why it is read.
    pub purpose: ReadPurpose,
}

/// A block handed to the network for transmission this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The receiving stream.
    pub stream: StreamId,
    /// The block delivered.
    pub addr: BlockAddr,
    /// Whether the block had to be reconstructed from parity.
    pub reconstructed: bool,
}

/// Why a block was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossReason {
    /// The block was on the failed disk and could not be reconstructed
    /// (earlier group members had already been delivered and discarded).
    FailedDisk,
    /// The block's read was displaced by higher-priority degraded-mode
    /// reads when all slots were occupied ("this will only occur if all
    /// the slots in the schedule for that disk in that cycle are
    /// occupied").
    Displaced,
    /// The failure hit mid-cycle, after the read schedule was committed
    /// (Improved-bandwidth scheme: "if the failure … occurs while we are
    /// reading X0, … we are forced to deliver the data that was read
    /// successfully and cause a hiccup for the data that was not").
    MidCycle,
    /// The stream was terminated because no idle capacity existed to
    /// absorb the shifted load (degradation of service).
    ServiceDegradation,
}

impl LossReason {
    /// The reason's stable label, as used in telemetry label sets and
    /// JSONL output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LossReason::FailedDisk => "failed-disk",
            LossReason::Displaced => "displaced",
            LossReason::MidCycle => "mid-cycle",
            LossReason::ServiceDegradation => "service-degradation",
        }
    }
}

impl fmt::Display for LossReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A block that will not be delivered: the viewer experiences a hiccup at
/// `delivery_cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostBlock {
    /// The affected stream.
    pub stream: StreamId,
    /// The lost block.
    pub addr: BlockAddr,
    /// Why it was lost.
    pub reason: LossReason,
    /// The cycle in which the viewer notices (scheduled delivery).
    pub delivery_cycle: u64,
}

/// Everything the scheduler decided for one cycle.
#[derive(Debug, Clone, Default)]
pub struct CyclePlan {
    /// The cycle this plan covers.
    pub cycle: u64,
    /// Reads per disk. Every disk's list fits its slot capacity.
    pub reads: BTreeMap<DiskId, Vec<PlannedRead>>,
    /// Blocks transmitted this cycle.
    pub deliveries: Vec<Delivery>,
    /// Hiccups occurring this cycle (previously lost blocks whose
    /// delivery slot has arrived).
    pub hiccups: Vec<LostBlock>,
    /// Streams that completed delivery this cycle.
    pub finished: Vec<StreamId>,
}

impl CyclePlan {
    /// A plan with no activity.
    #[must_use]
    pub fn empty(cycle: u64) -> Self {
        CyclePlan {
            cycle,
            ..CyclePlan::default()
        }
    }

    /// Reset the plan to cover `cycle` with no activity, keeping all
    /// allocated storage: the delivery/hiccup/finished vectors are
    /// cleared in place, and every per-disk read list is cleared but kept
    /// in the map so its capacity is reused next cycle. Stale map entries
    /// are indistinguishable from absent ones through the read API
    /// ([`reads_on`](CyclePlan::reads_on) returns `&[]` either way).
    pub fn reset(&mut self, cycle: u64) {
        self.cycle = cycle;
        for reads in self.reads.values_mut() {
            reads.clear();
        }
        self.deliveries.clear();
        self.hiccups.clear();
        self.finished.clear();
    }

    /// Total tracks read this cycle.
    #[must_use]
    pub fn total_reads(&self) -> usize {
        self.reads.values().map(Vec::len).sum()
    }

    /// Reads on one disk.
    #[must_use]
    pub fn reads_on(&self, disk: DiskId) -> &[PlannedRead] {
        self.reads.get(&disk).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Add a read to a disk's list.
    pub fn push_read(&mut self, disk: DiskId, read: PlannedRead) {
        self.reads.entry(disk).or_default().push(read);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_layout::ObjectId;

    #[test]
    fn plan_read_accounting() {
        let mut p = CyclePlan::empty(3);
        assert_eq!(p.total_reads(), 0);
        p.push_read(
            DiskId(1),
            PlannedRead {
                stream: StreamId(0),
                addr: BlockAddr::data(ObjectId(0), 0, 1),
                purpose: ReadPurpose::Delivery,
            },
        );
        p.push_read(
            DiskId(1),
            PlannedRead {
                stream: StreamId(1),
                addr: BlockAddr::data(ObjectId(1), 0, 1),
                purpose: ReadPurpose::Delivery,
            },
        );
        assert_eq!(p.total_reads(), 2);
        assert_eq!(p.reads_on(DiskId(1)).len(), 2);
        assert!(p.reads_on(DiskId(9)).is_empty());
    }

    #[test]
    fn reset_clears_but_reads_api_hides_stale_entries() {
        let mut p = CyclePlan::empty(1);
        p.push_read(
            DiskId(2),
            PlannedRead {
                stream: StreamId(0),
                addr: BlockAddr::data(ObjectId(0), 0, 2),
                purpose: ReadPurpose::Parity,
            },
        );
        p.deliveries.push(Delivery {
            stream: StreamId(0),
            addr: BlockAddr::data(ObjectId(0), 0, 2),
            reconstructed: false,
        });
        p.finished.push(StreamId(0));
        p.reset(2);
        assert_eq!(p.cycle, 2);
        assert_eq!(p.total_reads(), 0);
        assert!(p.reads_on(DiskId(2)).is_empty());
        assert!(p.deliveries.is_empty());
        assert!(p.hiccups.is_empty());
        assert!(p.finished.is_empty());
    }

    #[test]
    fn loss_reason_display() {
        assert_eq!(LossReason::FailedDisk.to_string(), "failed-disk");
        assert_eq!(LossReason::Displaced.to_string(), "displaced");
    }
}
