//! Improved-bandwidth scheduling (Section 4).
//!
//! No dedicated parity disks: "instead of having dedicated parity disks,
//! which are only used for reading in case of failure, we can intermix
//! data and parity information on disks", so all `D` disks deliver data
//! during normal operation. The price is failure handling by a cascading
//! **shift to the right**: a failed disk's blocks are rebuilt from parity
//! on the next cluster, consuming its idle capacity — and if there is
//! none, displacing local reads, which become "partial disk failures" of
//! that cluster and push parity reads one cluster further.

use crate::cycle::CycleConfig;
use crate::plan::{CyclePlan, Delivery, LossReason, LostBlock, PlannedRead, ReadPurpose};
use crate::streams::{StreamId, StreamInfo};
use crate::traits::{
    data_tracks_on_disks, emit_mode_transition, AdmissionError, FailureReport, PlanStability,
    SchemeKind, SchemeScheduler,
};
use mms_buffer::{BufferPool, OwnerId};
use mms_disk::DiskId;
use mms_layout::{BlockAddr, Catalog, ClusterId, ImprovedLayout, Layout, ObjectId};
use std::collections::{BTreeMap, BTreeSet};

/// Per-group-read bookkeeping gathered in pass 1 of `plan_cycle`:
/// reconstructed block indices, hiccup indices with reasons, and the
/// buffer tracks charged. Entries live in a reusable Vec sorted by
/// stream id; a dropped stream clears `live` (its vectors return to the
/// pools immediately) instead of removing the entry, so the staging
/// structure itself never reallocates at steady state.
#[derive(Debug)]
struct IncomingEntry {
    stream: StreamId,
    reconstructed: Vec<u32>,
    hiccups: Vec<(u32, LossReason)>,
    charged: usize,
    live: bool,
}

/// Look up a live staging entry by stream id (entries are pushed in
/// ascending id order, so a binary search suffices).
fn incoming_entry(incoming: &mut [IncomingEntry], sid: StreamId) -> Option<&mut IncomingEntry> {
    incoming
        .binary_search_by_key(&sid, |e| e.stream)
        .ok()
        .map(move |ix| &mut incoming[ix])
        .filter(|e| e.live)
}

/// Per-stream state.
#[derive(Debug, Clone)]
struct IbStream {
    object: ObjectId,
    start_cluster: u32,
    groups: u64,
    tracks: u64,
    start_cycle: u64,
    class: u32,
    delivered: u64,
    lost: u64,
    /// Block indices of the group read last cycle to be delivered
    /// reconstructed this cycle.
    pending_reconstructed: Vec<u32>,
    /// Block indices of the group read last cycle that hiccup this
    /// cycle, with the reason.
    pending_hiccups: Vec<(u32, LossReason)>,
    /// Buffer tracks charged for the group read last cycle.
    pending_buffered: usize,
}

/// The Improved-bandwidth scheduler (`k = k' = C−1`, clusters of `C−1`
/// all-data disks, parity on the following cluster).
#[derive(Debug)]
pub struct ImprovedScheduler {
    config: CycleConfig,
    catalog: Catalog<ImprovedLayout>,
    streams: BTreeMap<StreamId, IbStream>,
    class_load: Vec<usize>,
    /// Failed disks (positions) per cluster.
    failed: BTreeMap<ClusterId, BTreeSet<u32>>,
    /// Per-disk slots held back for failure absorption (Section 4's
    /// "some small amount of idle capacity could be reserved").
    reserved_slots: usize,
    /// Section 4's "sophisticated scheduler": under lightly loaded
    /// conditions, read parity during normal operation so even a
    /// mid-cycle failure is masked; prefetches are skipped on any disk
    /// with no idle slots, so load always wins.
    parity_prefetch: bool,
    buffers: BufferPool,
    next_stream: u64,
    next_cycle: u64,
    /// Plan epoch: bumped by admit/release/failure/repair (see
    /// [`SchemeScheduler::plan_epoch`]).
    epoch: u64,
    /// Clusters visited by the most recent shift-to-the-right cascade.
    last_shift_path: Vec<ClusterId>,
    /// Set while a failure happened mid-cycle and the next planned cycle
    /// must hiccup the failed disk's uncompleted reads.
    midcycle_pending: Option<DiskId>,
    /// Reusable per-cycle id snapshot (plan_cycle_into must not allocate).
    ids_scratch: Vec<StreamId>,
    /// Reusable prefetch-pass id snapshot.
    prefetch_scratch: Vec<StreamId>,
    /// Reusable parity work queue for the shift-to-the-right cascade.
    parity_scratch: Vec<(StreamId, ObjectId, u32, u64)>,
    /// Recycled `pending_reconstructed` vectors (swapped per read cycle).
    rec_pool: Vec<Vec<u32>>,
    /// Recycled `pending_hiccups` vectors (swapped per read cycle).
    hic_pool: Vec<Vec<(u32, LossReason)>>,
    /// Reusable pass-1 staging table (sorted by stream id).
    incoming_scratch: Vec<IncomingEntry>,
}

impl ImprovedScheduler {
    /// Build a scheduler over a populated catalog on an improved layout.
    ///
    /// `reserved_slots` is withheld from every disk's cycle capacity so a
    /// shift has idle capacity to land on (the paper's `K_IB` expressed
    /// per disk).
    ///
    /// # Panics
    /// Panics unless `k = k' = C−1` or if the reserve exceeds capacity.
    #[must_use]
    pub fn new(
        config: CycleConfig,
        catalog: Catalog<ImprovedLayout>,
        reserved_slots: usize,
    ) -> Self {
        let c = catalog.layout().geometry().group_size() as usize;
        assert_eq!(config.k, c - 1, "Improved-bandwidth requires k = C−1");
        assert_eq!(
            config.k_prime,
            c - 1,
            "Improved-bandwidth requires k' = C−1"
        );
        assert!(
            reserved_slots < config.slots_per_disk(),
            "reserve must leave at least one usable slot"
        );
        let classes = catalog.layout().geometry().clusters() as usize;
        ImprovedScheduler {
            config,
            catalog,
            streams: BTreeMap::new(),
            class_load: vec![0; classes],
            failed: BTreeMap::new(),
            reserved_slots,
            parity_prefetch: false,
            buffers: BufferPool::unbounded(),
            next_stream: 0,
            next_cycle: 0,
            epoch: 0,
            last_shift_path: Vec::new(),
            midcycle_pending: None,
            ids_scratch: Vec::new(),
            prefetch_scratch: Vec::new(),
            parity_scratch: Vec::new(),
            rec_pool: Vec::new(),
            hic_pool: Vec::new(),
            incoming_scratch: Vec::new(),
        }
    }

    /// The catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog<ImprovedLayout> {
        &self.catalog
    }

    /// Clusters visited by the most recent shift cascade (diagnostic).
    #[must_use]
    pub fn last_shift_path(&self) -> &[ClusterId] {
        &self.last_shift_path
    }

    /// Enable Section 4's adaptive parity prefetch: "Under lightly loaded
    /// conditions, the parity blocks can be read during normal operation
    /// and the isolated hiccup avoided. As the load increases, reading
    /// parity blocks can be dropped in favor of supporting more streams."
    pub fn set_parity_prefetch(&mut self, enabled: bool) {
        self.parity_prefetch = enabled;
    }

    /// Whether parity prefetch is enabled.
    #[must_use]
    pub fn parity_prefetch(&self) -> bool {
        self.parity_prefetch
    }

    fn clusters(&self) -> u64 {
        u64::from(self.catalog.layout().geometry().clusters())
    }

    fn usable_slots(&self) -> usize {
        self.config.slots_per_disk() - self.reserved_slots
    }

    fn blocks_in_group(&self, tracks: u64, g: u64) -> u32 {
        let bpg = u64::from(self.catalog.layout().blocks_per_group());
        (tracks - g * bpg).min(bpg) as u32
    }

    /// Register a newly staged object in the catalog (the tertiary →
    /// disk load path of Figure 1).
    pub fn register_object(
        &mut self,
        object: mms_layout::MediaObject,
    ) -> Result<(), mms_layout::CatalogError> {
        self.catalog.add(object).map(|_| ())
    }

    /// Retire an object from the catalog (the purge path), refusing while
    /// any stream is still delivering it.
    pub fn retire_object(&mut self, object: ObjectId) -> Result<(), crate::traits::RetireError> {
        let streams = self.streams.values().filter(|s| s.object == object).count();
        if streams > 0 {
            return Err(crate::traits::RetireError::InUse { object, streams });
        }
        self.catalog
            .remove(object)
            .map(|_| ())
            .map_err(|_| crate::traits::RetireError::NotFound { object })
    }
}

impl SchemeScheduler for ImprovedScheduler {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::ImprovedBandwidth
    }

    fn config(&self) -> &CycleConfig {
        &self.config
    }

    fn admit(&mut self, object: ObjectId, at_cycle: u64) -> Result<StreamId, AdmissionError> {
        assert!(at_cycle >= self.next_cycle, "cannot admit into the past");
        let placed = self
            .catalog
            .get(object)
            .map_err(|_| AdmissionError::UnknownObject { object })?;
        let nc = self.clusters();
        let class = ((u64::from(placed.start_cluster) + nc - (at_cycle % nc)) % nc) as usize;
        if self.class_load[class] >= self.usable_slots() {
            return Err(AdmissionError::AtCapacity {
                active: self.streams.len(),
                limit: self.stream_capacity(),
            });
        }
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        self.class_load[class] += 1;
        self.epoch += 1;
        self.streams.insert(
            id,
            IbStream {
                object,
                start_cluster: placed.start_cluster,
                groups: placed.groups,
                tracks: placed.object.tracks,
                start_cycle: at_cycle,
                class: class as u32,
                delivered: 0,
                lost: 0,
                pending_reconstructed: Vec::new(),
                pending_hiccups: Vec::new(),
                pending_buffered: 0,
            },
        );
        Ok(id)
    }

    fn stream_capacity(&self) -> usize {
        self.usable_slots() * self.clusters() as usize
    }

    fn active_streams(&self) -> usize {
        self.streams.len()
    }

    fn stream_info(&self, id: StreamId) -> Option<StreamInfo> {
        self.streams.get(&id).map(|s| StreamInfo {
            id,
            object: s.object,
            admitted_at: s.start_cycle,
            groups: s.groups,
            next_group: self.next_cycle.saturating_sub(s.start_cycle).min(s.groups),
            delivered_tracks: s.delivered,
            lost_tracks: s.lost,
        })
    }

    fn release(&mut self, id: StreamId) -> bool {
        let Some(st) = self.streams.get_mut(&id) else {
            return false;
        };
        self.epoch += 1;
        // One group is read per cycle, so `elapsed` groups are resident.
        let elapsed = self.next_cycle.saturating_sub(st.start_cycle);
        if elapsed == 0 {
            // Nothing read yet: retire immediately, returning the slot.
            let class = st.class as usize;
            self.class_load[class] -= 1;
            self.streams.remove(&id);
            self.buffers.free_all(OwnerId(id.0));
            return true;
        }
        // Truncate to what was read; the normal finish path in pass 3
        // delivers the final resident group and retires the stream.
        st.groups = st.groups.min(elapsed);
        true
    }

    fn plan_cycle_into(&mut self, cycle: u64, plan: &mut CyclePlan) {
        assert_eq!(cycle, self.next_cycle, "cycles must be planned in order");
        self.next_cycle += 1;
        plan.reset(cycle);
        self.last_shift_path.clear();
        let layout = *self.catalog.layout();
        let geometry = *layout.geometry();
        let midcycle_disk = self.midcycle_pending.take();

        // Snapshot stream ids into the reusable scratch so the passes
        // can mutate `self.streams` without holding a borrow on it.
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        ids.extend(self.streams.keys().copied());

        // Pass 1 — base reads and allocations: each stream reads its
        // whole group of C−1 data tracks from its current cluster;
        // groups touching a failed disk request their parity block on
        // the next cluster instead. Allocations precede every free of
        // the cycle so the pool's peak reflects true simultaneity
        // (2(C−1) per stream).
        let mut parity_needed = std::mem::take(&mut self.parity_scratch);
        parity_needed.clear();
        let mut incoming = std::mem::take(&mut self.incoming_scratch);
        incoming.clear();
        for id in ids.iter().copied() {
            // Copy the scalar fields out of the stream entry instead of
            // cloning it: the pending_* vectors make a full clone allocate.
            let (object, start_cluster, groups, tracks, start_cycle) = {
                let s = &self.streams[&id];
                (s.object, s.start_cluster, s.groups, s.tracks, s.start_cycle)
            };
            if cycle < start_cycle {
                continue;
            }
            let read_group = cycle - start_cycle;
            if read_group >= groups {
                continue;
            }
            let mut reconstructed = self.rec_pool.pop().unwrap_or_default();
            reconstructed.clear();
            let mut hiccups = self.hic_pool.pop().unwrap_or_default();
            hiccups.clear();
            let blocks = self.blocks_in_group(tracks, read_group);
            let cluster = layout.data_cluster(start_cluster, read_group);
            let failed = self.failed.get(&cluster);
            let mut reads = 0usize;
            for i in 0..blocks {
                let p = layout.data_placement(start_cluster, read_group, i);
                let pos = geometry.position_in_cluster(p.disk);
                if failed.is_some_and(|f| f.contains(&pos)) {
                    if failed.map_or(0, std::collections::BTreeSet::len) == 1 {
                        if midcycle_disk == Some(p.disk) {
                            // Mid-cycle failure: this cycle's read on
                            // the failed disk cannot be masked — unless
                            // the committed schedule already carried a
                            // parity prefetch (pass 2.5 may rescue it).
                            hiccups.push((i, LossReason::MidCycle));
                        } else {
                            reconstructed.push(i);
                            parity_needed.push((id, object, i, read_group));
                        }
                    } else {
                        // Two failures in one cluster: data loss.
                        hiccups.push((i, LossReason::FailedDisk));
                    }
                } else {
                    plan.push_read(
                        p.disk,
                        PlannedRead {
                            stream: id,
                            addr: BlockAddr::data(object, read_group, i),
                            purpose: ReadPurpose::Delivery,
                        },
                    );
                    reads += 1;
                }
            }
            self.buffers
                .alloc(OwnerId(id.0), reads)
                .expect("unbounded pool never refuses an allocation");
            // `ids` ascends, so the staging table stays sorted by id.
            incoming.push(IncomingEntry {
                stream: id,
                reconstructed,
                hiccups,
                charged: reads,
                live: true,
            });
        }

        // Pass 2 — place parity reads, shifting right through clusters
        // until idle capacity is found. Displaced local reads become
        // partial failures that need *their* parity one cluster further.
        let cap = self.config.slots_per_disk();
        let mut queue = parity_needed;
        let mut hops = 0usize;
        let max_hops = self.clusters() as usize * cap * 4 + 16;
        while let Some((sid, object, idx, group)) = queue.pop() {
            hops += 1;
            if hops > max_hops {
                // No capacity anywhere: degradation of service — drop the
                // stream whose parity could not be placed.
                self.drop_stream(sid, cycle, plan);
                if let Some(e) = incoming_entry(&mut incoming, sid) {
                    e.live = false;
                    self.rec_pool.push(std::mem::take(&mut e.reconstructed));
                    self.hic_pool.push(std::mem::take(&mut e.hiccups));
                }
                continue;
            }
            let Some(start_cluster) = self.streams.get(&sid).map(|s| s.start_cluster) else {
                continue; // already dropped/finished
            };
            let pp = layout.parity_placement(start_cluster, group);
            let disk = pp.disk;
            if !self.last_shift_path.contains(&pp.cluster) {
                self.last_shift_path.push(pp.cluster);
            }
            // A dead parity disk means the block is unrecoverable.
            let parity_pos = geometry.position_in_cluster(disk);
            if self
                .failed
                .get(&pp.cluster)
                .map(|f| f.contains(&parity_pos))
                .unwrap_or(false)
            {
                if let Some(e) = incoming_entry(&mut incoming, sid) {
                    e.reconstructed.retain(|&x| x != idx);
                    if !e.hiccups.iter().any(|(i, _)| *i == idx) {
                        e.hiccups.push((idx, LossReason::FailedDisk));
                    }
                }
                continue;
            }
            let load = plan.reads_on(disk).len();
            if load < cap {
                plan.push_read(
                    disk,
                    PlannedRead {
                        stream: sid,
                        addr: BlockAddr::parity(object, group),
                        purpose: ReadPurpose::Parity,
                    },
                );
                self.buffers
                    .alloc(OwnerId(sid.0), 1)
                    .expect("unbounded pool never refuses an allocation");
                if let Some(e) = incoming_entry(&mut incoming, sid) {
                    e.charged += 1;
                }
                continue;
            }
            // Disk full: displace one local Delivery read (at most one
            // per parity group is ever displaced) and retry the parity
            // read in the freed slot.
            let victim_ix = plan
                .reads_on(disk)
                .iter()
                .position(|r| r.purpose == ReadPurpose::Delivery);
            match victim_ix {
                None => {
                    // Nothing displaceable (all reads are parity):
                    // degradation of service.
                    self.drop_stream(sid, cycle, plan);
                    if let Some(e) = incoming_entry(&mut incoming, sid) {
                        e.live = false;
                        self.rec_pool.push(std::mem::take(&mut e.reconstructed));
                        self.hic_pool.push(std::mem::take(&mut e.hiccups));
                    }
                }
                Some(ix) => {
                    let victim = plan
                        .reads
                        .get_mut(&disk)
                        .expect("a disk with a displaceable read has a read list")
                        .remove(ix);
                    // The displaced block will be reconstructed via its
                    // own parity group one cluster to the right.
                    if let mms_layout::BlockKind::Data(vi) = victim.addr.kind {
                        if let Some(e) = incoming_entry(&mut incoming, victim.stream) {
                            e.reconstructed.push(vi);
                            // Undo the victim's data-read buffer charge;
                            // its parity read (when placed) re-charges.
                            e.charged = e.charged.saturating_sub(1);
                        }
                        queue.push((victim.stream, victim.addr.object, vi, victim.addr.group));
                        let _ = self.buffers.free(OwnerId(victim.stream.0), 1);
                    }
                    // Place the parity read in the freed slot.
                    plan.push_read(
                        disk,
                        PlannedRead {
                            stream: sid,
                            addr: BlockAddr::parity(object, group),
                            purpose: ReadPurpose::Parity,
                        },
                    );
                    self.buffers
                        .alloc(OwnerId(sid.0), 1)
                        .expect("unbounded pool never refuses an allocation");
                    if let Some(e) = incoming_entry(&mut incoming, sid) {
                        e.charged += 1;
                    }
                }
            }
        }
        self.parity_scratch = queue;

        // Pass 2.5 — adaptive parity prefetch (Section 4's sophisticated
        // scheduler): where a group's parity disk still has an idle slot,
        // read the parity alongside the data. A prefetched parity rescues
        // this cycle's mid-cycle loss (the read was part of the committed
        // schedule), and load always wins: full disks skip the prefetch.
        if self.parity_prefetch {
            let mut ids2 = std::mem::take(&mut self.prefetch_scratch);
            ids2.clear();
            ids2.extend(incoming.iter().filter(|e| e.live).map(|e| e.stream));
            for id in ids2.iter().copied() {
                let (object, start_cluster, start_cycle) = {
                    let s = &self.streams[&id];
                    (s.object, s.start_cluster, s.start_cycle)
                };
                let read_group = cycle - start_cycle;
                // Skip groups whose parity is already being read
                // (failure-reconstruction path placed it in pass 2).
                let pp = layout.parity_placement(start_cluster, read_group);
                let already = plan
                    .reads_on(pp.disk)
                    .iter()
                    .any(|r| r.stream == id && r.addr == BlockAddr::parity(object, read_group));
                if already {
                    continue;
                }
                let parity_pos = geometry.position_in_cluster(pp.disk);
                let parity_dead = self
                    .failed
                    .get(&pp.cluster)
                    .map(|f| f.contains(&parity_pos))
                    .unwrap_or(false);
                if parity_dead || plan.reads_on(pp.disk).len() >= cap {
                    continue;
                }
                plan.push_read(
                    pp.disk,
                    PlannedRead {
                        stream: id,
                        addr: BlockAddr::parity(object, read_group),
                        purpose: ReadPurpose::Parity,
                    },
                );
                self.buffers
                    .alloc(OwnerId(id.0), 1)
                    .expect("unbounded pool never refuses an allocation");
                let entry = incoming_entry(&mut incoming, id)
                    .expect("prefetch snapshot only holds streams read this cycle");
                entry.charged += 1;
                // Rescue a mid-cycle loss: with parity and the group's
                // surviving members resident by end of cycle, the block
                // is reconstructed in time.
                if let Some(ix) = entry
                    .hiccups
                    .iter()
                    .position(|(_, reason)| *reason == LossReason::MidCycle)
                {
                    let (block, _) = entry.hiccups.remove(ix);
                    entry.reconstructed.push(block);
                }
            }
            self.prefetch_scratch = ids2;
        }

        // Pass 3 — deliveries of last cycle's groups and frees.
        for id in ids.iter().copied() {
            // Scalar copies again: the mutable re-borrow below must not
            // overlap a borrow of the stream entry.
            let Some((object, groups, tracks, start_cycle)) = self
                .streams
                .get(&id)
                .map(|s| (s.object, s.groups, s.tracks, s.start_cycle))
            else {
                continue;
            };
            if cycle < start_cycle + 1 {
                continue;
            }
            let g = cycle - start_cycle - 1;
            if g >= groups {
                continue;
            }
            let blocks = self.blocks_in_group(tracks, g);
            let st = self
                .streams
                .get_mut(&id)
                .expect("pass 3 checks the stream is still live above");
            for i in 0..blocks {
                let addr = BlockAddr::data(object, g, i);
                if let Some(&(_, reason)) = st.pending_hiccups.iter().find(|(ix, _)| *ix == i) {
                    plan.hiccups.push(LostBlock {
                        stream: id,
                        addr,
                        reason,
                        delivery_cycle: cycle,
                    });
                    st.lost += 1;
                } else {
                    plan.deliveries.push(Delivery {
                        stream: id,
                        addr,
                        reconstructed: st.pending_reconstructed.contains(&i),
                    });
                    st.delivered += 1;
                }
            }
            // Release exactly what the group charged when it was read.
            let charged = st.pending_buffered;
            st.pending_buffered = 0;
            self.buffers
                .free(OwnerId(id.0), charged)
                .expect("pending_buffered tracks exactly what the read cycle charged");
            if g + 1 == st.groups {
                plan.finished.push(id);
                let class = st.class as usize;
                self.class_load[class] -= 1;
                self.streams.remove(&id);
                self.buffers.free_all(OwnerId(id.0));
            }
        }

        // Commit the just-read groups' state, recycling the vectors the
        // new state displaces (or carries, for retired streams). Dropped
        // entries already recycled theirs when `live` was cleared.
        for e in incoming.drain(..) {
            if !e.live {
                continue;
            }
            if let Some(st) = self.streams.get_mut(&e.stream) {
                let old_rec = std::mem::replace(&mut st.pending_reconstructed, e.reconstructed);
                let old_hic = std::mem::replace(&mut st.pending_hiccups, e.hiccups);
                st.pending_buffered = e.charged;
                self.rec_pool.push(old_rec);
                self.hic_pool.push(old_hic);
            } else {
                self.rec_pool.push(e.reconstructed);
                self.hic_pool.push(e.hiccups);
            }
        }
        self.incoming_scratch = incoming;
        self.ids_scratch = ids;
    }

    fn on_disk_failure(&mut self, disk: DiskId, cycle: u64, mid_cycle: bool) -> FailureReport {
        let geometry = *self.catalog.layout().geometry();
        let cluster = geometry.cluster_of(disk);
        let pos = geometry.position_in_cluster(disk);
        self.epoch += 1;
        let entry = self.failed.entry(cluster).or_default();
        entry.insert(pos);
        // A failure in each of two *adjacent* clusters also loses data in
        // this scheme (shared parity-group membership), in addition to two
        // failures within one cluster.
        let prev = ClusterId((cluster.0 + geometry.clusters() - 1) % geometry.clusters());
        let next = geometry.next_cluster(cluster);
        let catastrophic = self.failed[&cluster].len() >= 2
            || self
                .failed
                .get(&prev)
                .map(|s| !s.is_empty())
                .unwrap_or(false)
            || self
                .failed
                .get(&next)
                .map(|s| !s.is_empty())
                .unwrap_or(false);
        if mid_cycle {
            self.midcycle_pending = Some(disk);
        }
        let data_loss_tracks = if catastrophic {
            // Parity groups straddle cluster boundaries here, so the
            // unrecoverable span is every failed disk in this cluster
            // and its two neighbours.
            let mut clusters = vec![prev, cluster, next];
            clusters.sort_unstable_by_key(|c| c.0);
            clusters.dedup();
            let failed = clusters.into_iter().flat_map(|c| {
                self.failed
                    .get(&c)
                    .into_iter()
                    .flat_map(move |set| set.iter().map(move |&p| geometry.disk_at(c, p)))
            });
            data_tracks_on_disks(&self.catalog, failed)
        } else {
            0
        };
        let (from, to) = if catastrophic {
            ("degraded", "catastrophic")
        } else {
            ("normal", "degraded")
        };
        emit_mode_transition(self.scheme(), cluster, cycle, from, to);
        FailureReport {
            degraded_clusters: vec![cluster],
            catastrophic,
            data_loss_tracks,
            ..FailureReport::default()
        }
    }

    fn on_disk_repair(&mut self, disk: DiskId, cycle: u64) {
        let geometry = *self.catalog.layout().geometry();
        let cluster = geometry.cluster_of(disk);
        let pos = geometry.position_in_cluster(disk);
        self.epoch += 1;
        if let Some(set) = self.failed.get_mut(&cluster) {
            set.remove(&pos);
            if set.is_empty() {
                self.failed.remove(&cluster);
                emit_mode_transition(self.scheme(), cluster, cycle, "degraded", "normal");
            }
        }
    }

    fn buffer_in_use(&self) -> usize {
        self.buffers.in_use()
    }

    fn buffer_high_water(&self) -> usize {
        self.buffers.high_water()
    }

    fn plan_stability(&self, cycle: u64) -> PlanStability {
        // One whole group per cycle, rotating over N_C clusters (the
        // prefetch pass is equally periodic: one parity read per stream
        // per cycle on the next cluster).
        let period = self.clusters();
        if !self.failed.is_empty() || self.midcycle_pending.is_some() {
            return PlanStability { period, stable: 0 };
        }
        let mut stable = u64::MAX;
        for s in self.streams.values() {
            if cycle <= s.start_cycle {
                return PlanStability { period, stable: 0 };
            }
            // The final (possibly partial) group is read at
            // start + groups − 1; end the window before it.
            stable = stable.min((s.start_cycle + s.groups - 1).saturating_sub(cycle));
        }
        PlanStability { period, stable }
    }

    fn fast_forward(&mut self, cycles: u64) {
        debug_assert!(self.failed.is_empty(), "fast_forward in degraded mode");
        debug_assert_eq!(cycles % self.clusters(), 0, "not a whole rotation");
        self.next_cycle += cycles;
        // One full group delivered per stream per steady cycle; the
        // pending_* lists stay empty and pending_buffered is periodic.
        let bpg = u64::from(self.catalog.layout().blocks_per_group());
        for s in self.streams.values_mut() {
            s.delivered += cycles * bpg;
        }
    }

    fn plan_epoch(&self) -> u64 {
        self.epoch
    }
}

impl ImprovedScheduler {
    /// Terminate a stream (degradation of service).
    fn drop_stream(&mut self, id: StreamId, cycle: u64, plan: &mut CyclePlan) {
        if let Some(st) = self.streams.remove(&id) {
            self.class_load[st.class as usize] -= 1;
            self.buffers.free_all(OwnerId(id.0));
            plan.hiccups.push(LostBlock {
                stream: id,
                addr: BlockAddr::data(st.object, 0, 0),
                reason: LossReason::ServiceDegradation,
                delivery_cycle: cycle,
            });
            // Remove the stream's reads from this plan.
            for reads in plan.reads.values_mut() {
                reads.retain(|r| r.stream != id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_disk::{Bandwidth, DiskParams};
    use mms_layout::{BandwidthClass, Geometry, MediaObject};

    fn make(disks: usize, c: usize, reserve: usize, objects: &[(u64, u64)]) -> ImprovedScheduler {
        let geo = Geometry::improved(disks, c).unwrap();
        let layout = ImprovedLayout::new(geo);
        let mut catalog = Catalog::new(layout, 100_000);
        for &(id, tracks) in objects {
            catalog
                .add(MediaObject::new(
                    ObjectId(id),
                    format!("o{id}"),
                    tracks,
                    BandwidthClass::Mpeg1,
                ))
                .unwrap();
        }
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            c - 1,
            c - 1,
        );
        ImprovedScheduler::new(cfg, catalog, reserve)
    }

    #[test]
    fn normal_mode_never_reads_parity() {
        let mut s = make(8, 5, 1, &[(0, 16)]);
        let id = s.admit(ObjectId(0), 0).unwrap();
        for t in 0..4 {
            let p = s.plan_cycle(t);
            assert!(
                p.reads
                    .values()
                    .flatten()
                    .all(|r| r.purpose == ReadPurpose::Delivery),
                "cycle {t}"
            );
            if t >= 1 {
                assert_eq!(p.deliveries.len(), 4);
                assert!(p.deliveries.iter().all(|d| d.stream == id));
            }
        }
    }

    #[test]
    fn buffer_peak_is_2_c_minus_1_per_stream() {
        let mut s = make(8, 5, 1, &[(0, 40)]);
        s.admit(ObjectId(0), 0).unwrap();
        for t in 0..6 {
            s.plan_cycle(t);
        }
        // 2(C−1) = 8 for C = 5.
        assert_eq!(s.buffer_high_water(), 8);
    }

    #[test]
    fn failure_masked_by_parity_from_next_cluster() {
        let mut s = make(8, 5, 1, &[(0, 16)]);
        s.admit(ObjectId(0), 0).unwrap();
        let r = s.on_disk_failure(DiskId(1), 0, false);
        assert!(!r.catastrophic);
        let p0 = s.plan_cycle(0);
        // 3 data reads on cluster 0 + 1 parity read on cluster 1.
        assert_eq!(p0.total_reads(), 4);
        let parity_reads: Vec<_> = p0
            .reads
            .iter()
            .flat_map(|(d, v)| v.iter().map(move |r| (*d, *r)))
            .filter(|(_, r)| r.purpose == ReadPurpose::Parity)
            .collect();
        assert_eq!(parity_reads.len(), 1);
        assert!(parity_reads[0].0 .0 >= 4, "parity on cluster 1");
        assert_eq!(s.last_shift_path(), &[ClusterId(1)]);
        let p1 = s.plan_cycle(1);
        assert_eq!(p1.deliveries.len(), 4);
        assert_eq!(p1.deliveries.iter().filter(|d| d.reconstructed).count(), 1);
        assert!(p1.hiccups.is_empty());
    }

    #[test]
    fn midcycle_failure_causes_one_hiccup_then_masks() {
        let mut s = make(8, 5, 1, &[(0, 16)]);
        s.admit(ObjectId(0), 0).unwrap();
        s.on_disk_failure(DiskId(2), 0, true);
        let _p0 = s.plan_cycle(0);
        let p1 = s.plan_cycle(1);
        // The block being read when the disk died is a hiccup…
        assert_eq!(p1.hiccups.len(), 1);
        assert_eq!(p1.hiccups[0].reason, LossReason::MidCycle);
        assert_eq!(p1.deliveries.len(), 3);
        // …but from the next cycle on, parity masks the failure.
        let p2 = s.plan_cycle(2);
        assert_eq!(p2.deliveries.len(), 4);
        assert_eq!(p2.hiccups.len(), 0);
        let p3 = s.plan_cycle(3);
        assert_eq!(p3.deliveries.iter().filter(|d| d.reconstructed).count(), 1);
    }

    #[test]
    fn adjacent_cluster_failures_are_catastrophic() {
        let mut s = make(8, 5, 1, &[(0, 16)]);
        assert!(!s.on_disk_failure(DiskId(0), 0, false).catastrophic);
        // Disk 4 is in cluster 1, adjacent to cluster 0.
        assert!(s.on_disk_failure(DiskId(4), 0, false).catastrophic);
    }

    #[test]
    fn shift_cascades_when_next_cluster_is_full() {
        // 3 clusters of 4 disks; fill cluster 1's disks to capacity so the
        // parity read for cluster 0's failure displaces a local read,
        // which in turn needs parity from cluster 2.
        let mut s = make(12, 5, 1, &[(0, 120), (1, 120), (2, 120)]);
        let slots = s.usable_slots();
        // Saturate all classes: admit `slots` streams per object (objects
        // start on clusters 0, 1, 2 round-robin).
        for obj in 0..3u64 {
            for _ in 0..slots {
                s.admit(ObjectId(obj), 0).unwrap();
            }
        }
        assert_eq!(s.active_streams(), slots * 3);
        s.on_disk_failure(DiskId(0), 0, false);
        let p0 = s.plan_cycle(0);
        // The cascade had to visit cluster 1 and spill into cluster 2.
        assert!(s.last_shift_path().contains(&ClusterId(1)));
        assert!(s.last_shift_path().contains(&ClusterId(2)));
        // No stream dropped: reserve slots absorbed the shift eventually.
        assert!(p0
            .hiccups
            .iter()
            .all(|h| h.reason != LossReason::ServiceDegradation));
    }

    #[test]
    fn no_reserve_and_full_load_degrades_service() {
        // Zero reserve: admission fills every slot; a failure has nowhere
        // to shift, so some stream must be dropped.
        let mut s = make(8, 5, 0, &[(0, 120), (1, 120)]);
        let slots = s.usable_slots();
        for obj in 0..2u64 {
            for _ in 0..slots {
                s.admit(ObjectId(obj), 0).unwrap();
            }
        }
        s.on_disk_failure(DiskId(0), 0, false);
        let p0 = s.plan_cycle(0);
        let p1 = s.plan_cycle(1);
        let impact = p0.hiccups.len() + p1.hiccups.len();
        assert!(impact >= 1, "expected dropped streams or lost blocks");
    }

    #[test]
    fn capacity_reflects_reserve() {
        let s = make(8, 5, 1, &[(0, 16)]);
        // T_cyc for k' = 4: slots = 52; usable 51 × 2 clusters = 102.
        assert_eq!(s.stream_capacity(), 102);
        let s2 = make(8, 5, 10, &[(0, 16)]);
        assert_eq!(s2.stream_capacity(), 84);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use mms_disk::{Bandwidth, DiskParams};
    use mms_layout::{BandwidthClass, Geometry, MediaObject};

    fn make(prefetch: bool) -> ImprovedScheduler {
        let geo = Geometry::improved(8, 5).unwrap();
        let layout = ImprovedLayout::new(geo);
        let mut catalog = Catalog::new(layout, 100_000);
        catalog
            .add(MediaObject::new(
                ObjectId(0),
                "m",
                40,
                BandwidthClass::Mpeg1,
            ))
            .unwrap();
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            4,
            4,
        );
        let mut s = ImprovedScheduler::new(cfg, catalog, 1);
        s.set_parity_prefetch(prefetch);
        s
    }

    #[test]
    fn prefetch_masks_the_midcycle_hiccup() {
        // Without prefetch: exactly one MidCycle hiccup (§4's unmaskable
        // read). With prefetch: zero — the committed schedule already
        // carried the parity.
        for (prefetch, expect_hiccups) in [(false, 1usize), (true, 0usize)] {
            let mut s = make(prefetch);
            s.admit(ObjectId(0), 0).unwrap();
            s.plan_cycle(0);
            // Group 1 (cycle 1) reads cluster 1: disk 5 dies mid-cycle.
            s.on_disk_failure(DiskId(5), 1, true);
            let mut hiccups = 0;
            let mut reconstructed = 0;
            for t in 1..11 {
                let p = s.plan_cycle(t);
                hiccups += p.hiccups.len();
                reconstructed += p.deliveries.iter().filter(|d| d.reconstructed).count();
            }
            assert_eq!(hiccups, expect_hiccups, "prefetch={prefetch}");
            assert!(reconstructed > 0, "prefetch={prefetch}");
        }
    }

    #[test]
    fn prefetch_reads_parity_every_cycle_when_idle() {
        let mut s = make(true);
        s.admit(ObjectId(0), 0).unwrap();
        let p = s.plan_cycle(0);
        // 4 data reads + 1 prefetched parity on the next cluster.
        assert_eq!(p.total_reads(), 5);
        assert!(p
            .reads
            .values()
            .flatten()
            .any(|r| r.purpose == ReadPurpose::Parity));
        // Buffer charge grows by the parity track: 2(C−1) + 2 at peak.
        for t in 1..4 {
            s.plan_cycle(t);
        }
        assert_eq!(s.buffer_high_water(), 10);
    }

    #[test]
    fn prefetch_yields_to_load() {
        // Saturate the cluster so no idle slots remain: prefetch must
        // not displace any data read.
        let mut s = make(true);
        let slots = s.usable_slots();
        for _ in 0..slots {
            s.admit(ObjectId(0), 0).unwrap();
        }
        let p = s.plan_cycle(0);
        let cap = s.config().slots_per_disk();
        for reads in p.reads.values() {
            assert!(reads.len() <= cap);
        }
        // Every stream still got its 4 data reads.
        let data_reads = p
            .reads
            .values()
            .flatten()
            .filter(|r| r.purpose == ReadPurpose::Delivery)
            .count();
        assert_eq!(data_reads, slots * 4);
    }
}
