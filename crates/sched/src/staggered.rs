//! Staggered-group scheduling (Section 2).

use crate::cycle::CycleConfig;
use crate::plan::{CyclePlan, Delivery, LossReason, LostBlock, PlannedRead, ReadPurpose};
use crate::streams::{StreamId, StreamInfo};
use crate::traits::{
    data_tracks_on_disks, emit_mode_transition, AdmissionError, FailureReport, PlanStability,
    SchemeKind, SchemeScheduler,
};
use mms_buffer::{BufferPool, OwnerId};
use mms_disk::DiskId;
use mms_layout::{Catalog, ClusterId, ClusteredLayout, Layout, ObjectId};
use std::collections::{BTreeMap, BTreeSet};

/// Per-stream state.
#[derive(Debug, Clone)]
struct SgStream {
    object: ObjectId,
    start_cluster: u32,
    groups: u64,
    tracks: u64,
    start_cycle: u64,
    class: (u32, u32),
    delivered: u64,
    lost: u64,
    /// Index of the block of the current in-memory group that was
    /// reconstructed at read time, if any.
    reconstructed: Option<u32>,
    /// Indices of current-group blocks lost to a double failure.
    hiccups: Vec<u32>,
    /// Whether the current group's parity track is held in memory (it is
    /// consumed by reconstruction, and absent when the parity disk is
    /// down).
    parity_held: bool,
}

/// The Staggered-group scheduler: `k = C−1`, `k' = 1`.
///
/// "The main difference here, with respect to the Streaming RAID scheme,
/// is the elimination of the idea that the data read in one cycle must be
/// delivered in the next cycle. In this scheme we will read data for an
/// object in one cycle but allow that data to be delivered to the network
/// over the following n cycles." Each stream reads its entire parity
/// group — including parity, so failures are masked exactly as in
/// Streaming RAID — every `C−1` cycles, then transmits one track per
/// cycle. Streams are assigned staggered read phases, so their memory
/// usage is "out of phase": the aggregate buffer demand is about half of
/// Streaming RAID's (Figure 4).
#[derive(Debug)]
pub struct StaggeredScheduler {
    config: CycleConfig,
    catalog: Catalog<ClusteredLayout>,
    streams: BTreeMap<StreamId, SgStream>,
    /// Active streams per (read-phase, cluster-trajectory) class.
    class_load: BTreeMap<(u32, u32), usize>,
    failed: BTreeMap<ClusterId, BTreeSet<u32>>,
    buffers: BufferPool,
    next_stream: u64,
    next_cycle: u64,
    /// Plan epoch: bumped by admit/release/failure/repair (see
    /// [`SchemeScheduler::plan_epoch`]).
    epoch: u64,
    /// Reusable per-cycle id snapshot (plan_cycle_into must not allocate).
    ids_scratch: Vec<StreamId>,
    /// Recycled hiccup vectors: each read cycle swaps a stream's old
    /// hiccup list for a pooled one instead of allocating.
    hiccup_pool: Vec<Vec<u32>>,
}

impl StaggeredScheduler {
    /// Build a scheduler over a populated catalog.
    ///
    /// # Panics
    /// Panics unless `k = C−1` and `k' = 1` (the scheme's definition).
    #[must_use]
    pub fn new(config: CycleConfig, catalog: Catalog<ClusteredLayout>) -> Self {
        let c = catalog.layout().geometry().group_size() as usize;
        assert_eq!(config.k, c - 1, "Staggered-group requires k = C−1");
        assert_eq!(config.k_prime, 1, "Staggered-group requires k' = 1");
        StaggeredScheduler {
            config,
            catalog,
            streams: BTreeMap::new(),
            class_load: BTreeMap::new(),
            failed: BTreeMap::new(),
            buffers: BufferPool::unbounded(),
            next_stream: 0,
            next_cycle: 0,
            epoch: 0,
            ids_scratch: Vec::new(),
            hiccup_pool: Vec::new(),
        }
    }

    /// The catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog<ClusteredLayout> {
        &self.catalog
    }

    fn period(&self) -> u64 {
        self.config.read_period() as u64
    }

    fn blocks_in_group(&self, tracks: u64, g: u64) -> u32 {
        let bpg = u64::from(self.catalog.layout().blocks_per_group());
        (tracks - g * bpg).min(bpg) as u32
    }

    /// Admission class of a stream starting at `at_cycle` for start
    /// cluster `h`: streams with equal read-phase residue and cluster
    /// trajectory contend for the same slots forever.
    fn class_of(&self, h: u32, at_cycle: u64) -> (u32, u32) {
        let period = self.period();
        let nc = u64::from(self.catalog.layout().geometry().clusters());
        let r = (at_cycle % period) as u32;
        let q = at_cycle / period;
        let psi = ((u64::from(h) + nc - (q % nc)) % nc) as u32;
        (r, psi)
    }

    /// Register a newly staged object in the catalog (the tertiary →
    /// disk load path of Figure 1).
    pub fn register_object(
        &mut self,
        object: mms_layout::MediaObject,
    ) -> Result<(), mms_layout::CatalogError> {
        self.catalog.add(object).map(|_| ())
    }

    /// Retire an object from the catalog (the purge path), refusing while
    /// any stream is still delivering it.
    pub fn retire_object(&mut self, object: ObjectId) -> Result<(), crate::traits::RetireError> {
        let streams = self.streams.values().filter(|s| s.object == object).count();
        if streams > 0 {
            return Err(crate::traits::RetireError::InUse { object, streams });
        }
        self.catalog
            .remove(object)
            .map(|_| ())
            .map_err(|_| crate::traits::RetireError::NotFound { object })
    }
}

impl SchemeScheduler for StaggeredScheduler {
    fn scheme(&self) -> SchemeKind {
        SchemeKind::StaggeredGroup
    }

    fn config(&self) -> &CycleConfig {
        &self.config
    }

    fn admit(&mut self, object: ObjectId, at_cycle: u64) -> Result<StreamId, AdmissionError> {
        assert!(at_cycle >= self.next_cycle, "cannot admit into the past");
        let placed = self
            .catalog
            .get(object)
            .map_err(|_| AdmissionError::UnknownObject { object })?;
        let class = self.class_of(placed.start_cluster, at_cycle);
        let load = self.class_load.get(&class).copied().unwrap_or(0);
        if load >= self.config.slots_per_disk() {
            return Err(AdmissionError::AtCapacity {
                active: self.streams.len(),
                limit: self.stream_capacity(),
            });
        }
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        *self.class_load.entry(class).or_insert(0) += 1;
        self.epoch += 1;
        self.streams.insert(
            id,
            SgStream {
                object,
                start_cluster: placed.start_cluster,
                groups: placed.groups,
                tracks: placed.object.tracks,
                start_cycle: at_cycle,
                class,
                delivered: 0,
                lost: 0,
                reconstructed: None,
                hiccups: Vec::new(),
                parity_held: false,
            },
        );
        Ok(id)
    }

    fn stream_capacity(&self) -> usize {
        // slots × (C−1) phases × N_C clusters — Eq. 9's shape.
        self.config.slots_per_disk()
            * self.config.read_period()
            * self.catalog.layout().geometry().clusters() as usize
    }

    fn active_streams(&self) -> usize {
        self.streams.len()
    }

    fn stream_info(&self, id: StreamId) -> Option<StreamInfo> {
        self.streams.get(&id).map(|s| StreamInfo {
            id,
            object: s.object,
            admitted_at: s.start_cycle,
            groups: s.groups,
            next_group: (self.next_cycle.saturating_sub(s.start_cycle) / self.period())
                .min(s.groups),
            delivered_tracks: s.delivered,
            lost_tracks: s.lost,
        })
    }

    fn release(&mut self, id: StreamId) -> bool {
        let period = self.period();
        let Some(st) = self.streams.get_mut(&id) else {
            return false;
        };
        self.epoch += 1;
        // Group g is read at `start + g·period`, so the resident count
        // is the ceiling of the elapsed span over the period.
        let elapsed = self.next_cycle.saturating_sub(st.start_cycle);
        let read = elapsed.div_ceil(period);
        if read == 0 {
            // Nothing read yet: retire immediately, returning the slot.
            let class = st.class;
            *self
                .class_load
                .get_mut(&class)
                .expect("admission registered this stream's class") -= 1;
            self.streams.remove(&id);
            self.buffers.free_all(OwnerId(id.0));
            return true;
        }
        // Truncate to what was read; the in-flight group drains and the
        // normal finish path in pass 2 retires the stream.
        st.groups = st.groups.min(read);
        true
    }

    fn plan_cycle_into(&mut self, cycle: u64, plan: &mut CyclePlan) {
        assert_eq!(cycle, self.next_cycle, "cycles must be planned in order");
        self.next_cycle += 1;
        plan.reset(cycle);
        let layout = *self.catalog.layout();
        let geometry = *layout.geometry();
        let period = self.period();

        // Snapshot stream ids into the reusable scratch so the passes
        // can mutate `self.streams` without holding a borrow on it.
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        ids.extend(self.streams.keys().copied());

        // Pass 1 — reads and allocations. All of a cycle's reads are in
        // flight while the previous data is still being transmitted, so
        // allocations logically precede every free of the same cycle; the
        // pool's high-water mark then measures the paper's start-of-cycle
        // occupancy (Figure 4).
        for id in ids.iter().copied() {
            // Copy the scalar fields instead of cloning the entry: the
            // hiccups vector makes a full clone allocate under failures.
            let (object, start_cluster, groups, tracks, start_cycle) = {
                let s = &self.streams[&id];
                (s.object, s.start_cluster, s.groups, s.tracks, s.start_cycle)
            };
            if cycle < start_cycle {
                continue;
            }
            let rel = cycle - start_cycle;
            if !rel.is_multiple_of(period) {
                continue;
            }
            let g = rel / period;
            if g >= groups {
                continue;
            }
            let blocks = self.blocks_in_group(tracks, g);
            let cluster = layout.data_cluster(start_cluster, g);
            let failed = self.failed.get(&cluster);
            let parity_pos = geometry.disks_per_cluster() - 1;
            let parity_ok = failed.is_none_or(|f| !f.contains(&parity_pos));
            let mut reconstructed = None;
            let mut hiccups = self.hiccup_pool.pop().unwrap_or_default();
            hiccups.clear();
            let mut reads = 0usize;
            for i in 0..blocks {
                let p = layout.data_placement(start_cluster, g, i);
                let pos = geometry.position_in_cluster(p.disk);
                if failed.is_some_and(|f| f.contains(&pos)) {
                    if failed.map_or(0, std::collections::BTreeSet::len) == 1 && parity_ok {
                        reconstructed = Some(i);
                    } else {
                        hiccups.push(i);
                    }
                } else {
                    plan.push_read(
                        p.disk,
                        PlannedRead {
                            stream: id,
                            addr: mms_layout::BlockAddr::data(object, g, i),
                            purpose: ReadPurpose::Delivery,
                        },
                    );
                    reads += 1;
                }
            }
            if parity_ok {
                let pp = layout.parity_placement(start_cluster, g);
                plan.push_read(
                    pp.disk,
                    PlannedRead {
                        stream: id,
                        addr: mms_layout::BlockAddr::parity(object, g),
                        purpose: ReadPurpose::Parity,
                    },
                );
                reads += 1;
            }
            // Reconstruction replaces the parity buffer with the missing
            // data block, so the group holds `reads` tracks either way.
            self.buffers
                .alloc(OwnerId(id.0), reads)
                .expect("unbounded pool never refuses an allocation");
            let st = self
                .streams
                .get_mut(&id)
                .expect("stream id snapshot only holds live streams");
            st.parity_held = parity_ok && reconstructed.is_none();
            st.reconstructed = reconstructed;
            let retired = std::mem::replace(&mut st.hiccups, hiccups);
            self.hiccup_pool.push(retired);
        }

        // Pass 2 — deliveries, hiccups, and frees.
        for id in ids.iter().copied() {
            // Scalar copies again: the mutable re-borrow in the body must
            // not overlap a borrow of the stream entry.
            let Some((object, groups, tracks, start_cycle)) = self
                .streams
                .get(&id)
                .map(|s| (s.object, s.groups, s.tracks, s.start_cycle))
            else {
                continue;
            };
            if cycle < start_cycle + 1 {
                continue;
            }
            let rel = cycle - start_cycle;
            let g = (rel - 1) / period;
            let i = ((rel - 1) % period) as u32;
            if g >= groups {
                continue;
            }
            let blocks = self.blocks_in_group(tracks, g);
            if i < blocks {
                let addr = mms_layout::BlockAddr::data(object, g, i);
                let st = self
                    .streams
                    .get_mut(&id)
                    .expect("pass 2 checks the stream is still live above");
                if st.hiccups.contains(&i) {
                    plan.hiccups.push(LostBlock {
                        stream: id,
                        addr,
                        reason: LossReason::FailedDisk,
                        delivery_cycle: cycle,
                    });
                    st.lost += 1;
                } else {
                    plan.deliveries.push(Delivery {
                        stream: id,
                        addr,
                        reconstructed: st.reconstructed == Some(i),
                    });
                    st.delivered += 1;
                    self.buffers
                        .free(OwnerId(id.0), 1)
                        .expect("every delivered block was allocated at its read cycle");
                }
                if g + 1 == st.groups && i + 1 == blocks {
                    plan.finished.push(id);
                    let class = st.class;
                    *self
                        .class_load
                        .get_mut(&class)
                        .expect("admission registered this stream's class") -= 1;
                    self.streams.remove(&id);
                    self.buffers.free_all(OwnerId(id.0));
                    continue;
                }
            }
        }

        // End of cycle: groups read this cycle are fully resident, so
        // their parity tracks are no longer needed for failure masking.
        // Refill the snapshot: pass 2 may have retired streams.
        ids.clear();
        ids.extend(self.streams.keys().copied());
        for id in ids.iter().copied() {
            let s = self
                .streams
                .get(&id)
                .expect("stream id snapshot only holds live streams");
            if cycle >= s.start_cycle && (cycle - s.start_cycle).is_multiple_of(period) {
                let st = self
                    .streams
                    .get_mut(&id)
                    .expect("stream id snapshot only holds live streams");
                if st.parity_held {
                    st.parity_held = false;
                    self.buffers
                        .free(OwnerId(id.0), 1)
                        .expect("parity_held implies a parity buffer is allocated");
                }
            }
        }
        self.ids_scratch = ids;
    }

    fn on_disk_failure(&mut self, disk: DiskId, cycle: u64, _mid_cycle: bool) -> FailureReport {
        let geometry = *self.catalog.layout().geometry();
        let cluster = geometry.cluster_of(disk);
        let pos = geometry.position_in_cluster(disk);
        self.epoch += 1;
        let entry = self.failed.entry(cluster).or_default();
        entry.insert(pos);
        let catastrophic = entry.len() >= 2;
        let data_loss_tracks = if catastrophic {
            let failed = entry.iter().map(|&p| geometry.disk_at(cluster, p));
            data_tracks_on_disks(&self.catalog, failed)
        } else {
            0
        };
        let (from, to) = if catastrophic {
            ("degraded", "catastrophic")
        } else {
            ("normal", "degraded")
        };
        emit_mode_transition(self.scheme(), cluster, cycle, from, to);
        FailureReport {
            degraded_clusters: vec![cluster],
            catastrophic,
            data_loss_tracks,
            ..FailureReport::default()
        }
    }

    fn on_disk_repair(&mut self, disk: DiskId, cycle: u64) {
        let geometry = *self.catalog.layout().geometry();
        let cluster = geometry.cluster_of(disk);
        let pos = geometry.position_in_cluster(disk);
        self.epoch += 1;
        if let Some(set) = self.failed.get_mut(&cluster) {
            set.remove(&pos);
            if set.is_empty() {
                self.failed.remove(&cluster);
                emit_mode_transition(self.scheme(), cluster, cycle, "degraded", "normal");
            }
        }
    }

    fn buffer_in_use(&self) -> usize {
        self.buffers.in_use()
    }

    fn buffer_high_water(&self) -> usize {
        self.buffers.high_water()
    }

    fn plan_stability(&self, cycle: u64) -> PlanStability {
        // Reads recur every `read_period` cycles and the cluster
        // trajectory rotates over N_C clusters, so the full disk pattern
        // repeats every read_period · N_C cycles.
        let nc = u64::from(self.catalog.layout().geometry().clusters());
        let period = self.period() * nc;
        if !self.failed.is_empty() {
            return PlanStability { period, stable: 0 };
        }
        let mut stable = u64::MAX;
        for s in self.streams.values() {
            if cycle <= s.start_cycle {
                return PlanStability { period, stable: 0 };
            }
            // The final (possibly partial) group is read at
            // start + (groups − 1)·read_period; end the window before it.
            let final_read = s.start_cycle + (s.groups - 1) * self.period();
            stable = stable.min(final_read.saturating_sub(cycle));
        }
        PlanStability { period, stable }
    }

    fn fast_forward(&mut self, cycles: u64) {
        debug_assert!(self.failed.is_empty(), "fast_forward in degraded mode");
        let nc = u64::from(self.catalog.layout().geometry().clusters());
        debug_assert_eq!(cycles % (self.period() * nc), 0, "not a whole rotation");
        self.next_cycle += cycles;
        // One track delivered per stream per steady cycle; parity is
        // freed at the end of each read cycle, so `parity_held`,
        // `reconstructed`, and `hiccups` are all quiescent.
        for s in self.streams.values_mut() {
            s.delivered += cycles;
        }
    }

    fn plan_epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mms_disk::{Bandwidth, DiskParams};
    use mms_layout::{BandwidthClass, Geometry, MediaObject};

    fn make(disks: usize, c: usize, objects: &[(u64, u64)]) -> StaggeredScheduler {
        let geo = Geometry::clustered(disks, c).unwrap();
        let layout = ClusteredLayout::new(geo);
        let mut catalog = Catalog::new(layout, 100_000);
        for &(id, tracks) in objects {
            catalog
                .add(MediaObject::new(
                    ObjectId(id),
                    format!("o{id}"),
                    tracks,
                    BandwidthClass::Mpeg1,
                ))
                .unwrap();
        }
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            c - 1,
            1,
        );
        StaggeredScheduler::new(cfg, catalog)
    }

    #[test]
    fn reads_every_period_delivers_one_track_per_cycle() {
        let mut s = make(10, 5, &[(0, 8)]);
        let id = s.admit(ObjectId(0), 0).unwrap();
        let p0 = s.plan_cycle(0);
        assert_eq!(p0.total_reads(), 5); // group 0 + parity
        assert!(p0.deliveries.is_empty());
        for t in 1..4 {
            let p = s.plan_cycle(t);
            // Group 1 is read at t = 4, not before.
            assert_eq!(p.total_reads(), if t == 4 { 5 } else { 0 }, "t={t}");
            assert_eq!(p.deliveries.len(), 1, "t={t}");
        }
        let p4 = s.plan_cycle(4);
        assert_eq!(p4.total_reads(), 5); // group 1 read
        assert_eq!(p4.deliveries.len(), 1); // last track of group 0
        for t in 5..8 {
            let p = s.plan_cycle(t);
            assert_eq!(p.deliveries.len(), 1);
            assert!(p.finished.is_empty());
        }
        let p8 = s.plan_cycle(8);
        assert_eq!(p8.deliveries.len(), 1);
        assert_eq!(p8.finished, vec![id]);
    }

    #[test]
    fn buffer_profile_matches_figure4_single_stream() {
        // One stream, C = 5: occupancy right after a read cycle is C + 1
        // (new group incl. parity, plus the leftover undelivered track of
        // the previous group being transmitted this cycle) — but on the
        // very first group there is no leftover, so peak C = 5; from the
        // second read cycle on, the peak is C + 1 = 6.
        let mut s = make(10, 5, &[(0, 40)]);
        s.admit(ObjectId(0), 0).unwrap();
        s.plan_cycle(0); // read 5 tracks; parity released at end of cycle
        assert_eq!(s.buffer_in_use(), 4);
        s.plan_cycle(1); // deliver track 0
        assert_eq!(s.buffer_in_use(), 3);
        s.plan_cycle(2);
        assert_eq!(s.buffer_in_use(), 2);
        s.plan_cycle(3);
        assert_eq!(s.buffer_in_use(), 1);
        s.plan_cycle(4); // read group 1 while delivering last track of g0
        assert_eq!(s.buffer_high_water(), 6);
        assert_eq!(s.buffer_in_use(), 4);
    }

    #[test]
    fn staggered_streams_halve_aggregate_memory_vs_sr() {
        // C−1 streams at staggered phases: aggregate start-of-cycle
        // occupancy settles at C(C+1)/2 = 15 for C = 5 (Figure 4), versus
        // 2C per stream = 40 for 4 Streaming-RAID streams.
        let mut s = make(10, 5, &[(0, 400)]);
        for phase in 0..4u64 {
            // Admit one stream per phase; each admission cycle must be >=
            // planned cycles, so interleave.
            for t in (phase.saturating_sub(0))..phase {
                let _ = t;
            }
            s.admit(ObjectId(0), phase).unwrap();
        }
        for t in 0..40 {
            s.plan_cycle(t);
        }
        // Steady peak: the reading stream holds C + 1 = 6 (new group
        // including parity, plus the leftover track of its previous group
        // still being transmitted) while the other phases hold 4, 3, 2 —
        // the paper's C(C+1)/2 = 15 (Figure 4). Warm-up cycles peak lower.
        assert_eq!(s.buffer_high_water(), 15);
    }

    #[test]
    fn single_failure_masked_at_read_time() {
        let mut s = make(10, 5, &[(0, 16)]);
        let id = s.admit(ObjectId(0), 0).unwrap();
        let r = s.on_disk_failure(DiskId(1), 0, false);
        assert!(!r.catastrophic);
        let p0 = s.plan_cycle(0);
        assert_eq!(p0.total_reads(), 4); // 3 data + parity
        let mut reconstructed = 0;
        for t in 1..5 {
            let p = s.plan_cycle(t);
            assert!(p.hiccups.is_empty());
            reconstructed += p.deliveries.iter().filter(|d| d.reconstructed).count();
        }
        assert_eq!(reconstructed, 1, "block 1 of group 0 reconstructed");
        assert!(s.stream_info(id).is_some());
    }

    #[test]
    fn double_failure_hiccups_on_affected_blocks() {
        let mut s = make(10, 5, &[(0, 8)]);
        s.admit(ObjectId(0), 0).unwrap();
        s.on_disk_failure(DiskId(0), 0, false);
        let r = s.on_disk_failure(DiskId(2), 0, false);
        assert!(r.catastrophic);
        s.plan_cycle(0);
        let mut hiccups = 0;
        let mut delivered = 0;
        for t in 1..5 {
            let p = s.plan_cycle(t);
            hiccups += p.hiccups.len();
            delivered += p.deliveries.len();
        }
        assert_eq!(hiccups, 2);
        assert_eq!(delivered, 2);
    }

    #[test]
    fn admission_fills_phases_and_clusters() {
        let s = make(10, 5, &[(0, 400)]);
        // slots(12) × phases(4) × clusters(2) = 96.
        assert_eq!(s.stream_capacity(), 96);
    }

    #[test]
    fn admission_rejects_full_class() {
        let mut s = make(10, 5, &[(0, 400)]);
        let slots = s.config().slots_per_disk();
        for _ in 0..slots {
            s.admit(ObjectId(0), 0).unwrap();
        }
        assert!(matches!(
            s.admit(ObjectId(0), 0),
            Err(AdmissionError::AtCapacity { .. })
        ));
        // A different phase still has room.
        assert!(s.admit(ObjectId(0), 1).is_ok());
    }
}
