//! The common scheduler interface and failure reporting.

use crate::cycle::CycleConfig;
use crate::plan::{CyclePlan, LostBlock};
use crate::streams::{StreamId, StreamInfo};
use mms_disk::DiskId;
use mms_layout::{BlockKind, Catalog, ClusterId, Layout, ObjectId};
use std::fmt;

/// Which of the paper's four schemes a scheduler implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Streaming RAID (Section 2, `SR`).
    StreamingRaid,
    /// Staggered-group (Section 2, `SG`).
    StaggeredGroup,
    /// Non-clustered with buffer pool (Section 3, `NC`).
    NonClustered,
    /// Improved-bandwidth (Section 4, `IB`).
    ImprovedBandwidth,
}

impl SchemeKind {
    /// All four schemes, in the paper's comparison order.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::StreamingRaid,
        SchemeKind::StaggeredGroup,
        SchemeKind::NonClustered,
        SchemeKind::ImprovedBandwidth,
    ];

    /// The paper's abbreviation.
    #[must_use]
    pub fn abbrev(&self) -> &'static str {
        match self {
            SchemeKind::StreamingRaid => "SR",
            SchemeKind::StaggeredGroup => "SG",
            SchemeKind::NonClustered => "NC",
            SchemeKind::ImprovedBandwidth => "IB",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SchemeKind::StreamingRaid => "Streaming RAID",
            SchemeKind::StaggeredGroup => "Staggered-group",
            SchemeKind::NonClustered => "Non-clustered",
            SchemeKind::ImprovedBandwidth => "Improved-bandwidth",
        };
        f.write_str(s)
    }
}

/// Emit the `mode_transition` telemetry event every scheduler shares:
/// a cluster moved between operating modes (`normal`, `degraded`,
/// `catastrophic`) at `cycle`. Schedulers with extra context (e.g. the
/// non-clustered transition policy) emit the event themselves with
/// additional fields instead.
pub fn emit_mode_transition(
    scheme: SchemeKind,
    cluster: ClusterId,
    cycle: u64,
    from: &'static str,
    to: &'static str,
) {
    mms_telemetry::event!(
        mms_telemetry::Level::Info,
        "mode_transition",
        scheme = scheme.abbrev(),
        cluster = cluster.0,
        cycle = cycle,
        from = from,
        to = to
    );
}

/// Why a stream could not be admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The scheme's stream capacity (`N_p`) is reached.
    AtCapacity {
        /// Current active stream count.
        active: usize,
        /// The limit.
        limit: usize,
    },
    /// The object is not in the catalog.
    UnknownObject {
        /// The requested object.
        object: ObjectId,
    },
    /// The system has lost data (catastrophic failure) and cannot admit
    /// streams for objects touching the lost region until rebuild.
    Catastrophic,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::AtCapacity { active, limit } => {
                write!(f, "at capacity: {active} of {limit} streams active")
            }
            AdmissionError::UnknownObject { object } => {
                write!(f, "object {object} not in catalog")
            }
            AdmissionError::Catastrophic => {
                write!(f, "catastrophic failure: data loss pending rebuild")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Count the *data* tracks resident on `disks` in `catalog`.
///
/// When a parity group holds two or more concurrently-failed disks, no
/// surviving parity can reconstruct the data blocks on any of them, so
/// the catastrophic loss is exactly the data tracks on the failed set
/// (parity blocks carry no payload of their own and are excluded).
/// This walks the whole catalog — acceptable on the rare catastrophic
/// path, not for per-cycle use.
#[must_use]
pub fn data_tracks_on_disks<L, I>(catalog: &Catalog<L>, disks: I) -> u64
where
    L: Layout,
    I: IntoIterator<Item = DiskId>,
{
    disks
        .into_iter()
        .map(|d| {
            catalog
                .blocks_on_disk(d)
                .iter()
                .filter(|a| matches!(a.kind, BlockKind::Data(_)))
                .count() as u64
        })
        .sum()
}

/// What a disk failure did to the system, as seen by the scheduler.
#[derive(Debug, Clone, Default)]
pub struct FailureReport {
    /// Blocks that will not be delivered (each is one future hiccup).
    pub lost: Vec<LostBlock>,
    /// Streams terminated outright (degradation of service).
    pub dropped_streams: Vec<StreamId>,
    /// Clusters that entered degraded mode due to this failure.
    pub degraded_clusters: Vec<ClusterId>,
    /// True if data was lost irrecoverably (second failure within one
    /// parity group's span — the paper's *catastrophic failure*).
    pub catastrophic: bool,
    /// Data tracks rendered unrecoverable by this failure (0 unless
    /// [`catastrophic`](Self::catastrophic)): the data blocks resident
    /// on the failed disks of the affected parity group, which no
    /// surviving parity can reconstruct.
    pub data_loss_tracks: u64,
    /// Clusters visited by the Improved-bandwidth "shift to the right"
    /// cascade (empty for other schemes).
    pub shift_path: Vec<ClusterId>,
}

/// How far ahead a scheduler's plan sequence is a pure function of the
/// cycle number — the contract behind the simulator's event-horizon
/// fast path.
///
/// A scheduler reporting `stable = n` promises that for every cycle `t`
/// in `[cycle, cycle + n)`, the plan it would produce (reads,
/// deliveries, hiccups, buffer motion) depends only on `t` and repeats
/// with period [`period`](Self::period): planning `t` and `t + period`
/// yields identical per-disk read shapes and identical per-stream
/// deltas. No stream starts, finishes, or changes phase inside the
/// window, and no failure/repair state is pending. The window is
/// invalidated by any call to `admit`/`release`/`on_disk_failure`/
/// `on_disk_repair` — observable via
/// [`plan_epoch`](SchemeScheduler::plan_epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStability {
    /// Cycles per repetition of the plan pattern (≥ 1). For the
    /// clustered schemes this is a full rotation over the `N_C`
    /// clusters (times the read period, for multi-cycle read schedules).
    pub period: u64,
    /// Length of the stability window starting at the queried cycle; 0
    /// means the next cycle must be planned normally.
    pub stable: u64,
}

/// Why an object could not be retired from the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetireError {
    /// Streams are still delivering the object.
    InUse {
        /// The object.
        object: ObjectId,
        /// Active streams on it.
        streams: usize,
    },
    /// The object is not in the catalog.
    NotFound {
        /// The object.
        object: ObjectId,
    },
}

impl fmt::Display for RetireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetireError::InUse { object, streams } => {
                write!(f, "object {object} has {streams} active stream(s)")
            }
            RetireError::NotFound { object } => write!(f, "object {object} not found"),
        }
    }
}

impl std::error::Error for RetireError {}

/// The interface every scheme scheduler implements.
///
/// The scheduler is a deterministic state machine driven by
/// [`plan_cycle`](SchemeScheduler::plan_cycle); the discrete-event
/// simulator in `mms-sim` executes the produced plans against a real
/// [`mms_disk::DiskArray`] and real parity blocks.
pub trait SchemeScheduler {
    /// Which scheme this is.
    fn scheme(&self) -> SchemeKind;

    /// The cycle configuration in force.
    fn config(&self) -> &CycleConfig;

    /// Admit a new stream for `object`, beginning at `at_cycle` (must be
    /// the next unplanned cycle or later).
    fn admit(&mut self, object: ObjectId, at_cycle: u64) -> Result<StreamId, AdmissionError>;

    /// Maximum concurrently active streams this scheduler will admit.
    fn stream_capacity(&self) -> usize;

    /// Currently active streams.
    fn active_streams(&self) -> usize;

    /// Snapshot of one stream.
    fn stream_info(&self, id: StreamId) -> Option<StreamInfo>;

    /// Plan (and internally commit) one cycle into caller-owned storage.
    /// Cycles must be planned in increasing order without gaps.
    ///
    /// This is the allocation-free form: `plan` is
    /// [`reset`](CyclePlan::reset) and refilled, so a driver that reuses
    /// one `CyclePlan` across cycles pays no per-cycle heap traffic once
    /// the plan's vectors have grown to their steady-state capacity.
    fn plan_cycle_into(&mut self, cycle: u64, plan: &mut CyclePlan);

    /// Plan (and internally commit) one cycle, returning a fresh plan.
    /// Convenience wrapper over
    /// [`plan_cycle_into`](SchemeScheduler::plan_cycle_into) for tests
    /// and one-shot callers; hot loops should reuse a plan instead.
    fn plan_cycle(&mut self, cycle: u64) -> CyclePlan {
        let mut plan = CyclePlan::empty(cycle);
        self.plan_cycle_into(cycle, &mut plan);
        plan
    }

    /// Gracefully release a stream before its natural end (viewer
    /// abandonment, or a degraded-quality session finishing early).
    ///
    /// Groups already read drain normally: the stream's remaining length
    /// is truncated to the groups read so far, so the scheduler's usual
    /// finish path fires at the next delivery boundary and the stream is
    /// reported in [`CyclePlan::finished`]. A stream that has read
    /// nothing yet is retired immediately with its admission slot and
    /// buffers returned. Returns `false` if the stream is unknown
    /// (already finished or never admitted) — releasing twice is safe.
    fn release(&mut self, id: StreamId) -> bool;

    /// React to a disk failure. `mid_cycle` indicates the failure struck
    /// after `cycle`'s read schedule was already committed (relevant for
    /// the Improved-bandwidth scheme's unmaskable first-cycle hiccup).
    fn on_disk_failure(&mut self, disk: DiskId, cycle: u64, mid_cycle: bool) -> FailureReport;

    /// React to a disk repair (cluster leaves degraded mode).
    fn on_disk_repair(&mut self, disk: DiskId, cycle: u64);

    /// Buffer tracks currently charged.
    fn buffer_in_use(&self) -> usize;

    /// Peak buffer tracks ever charged (the scheme's measured `BF`).
    fn buffer_high_water(&self) -> usize;

    /// Report the plan-stability window starting at `cycle` (which must
    /// be the next unplanned cycle). The default is the always-safe
    /// answer — no stability, plan every cycle — so schemes opt in.
    ///
    /// Implementations are conservative: they return `stable > 0` only
    /// when fully healthy (no failed disks, no mode transitions
    /// pending) and every active stream is past its warm-up cycle and
    /// strictly before its final-group read, so every cycle in the
    /// window is a steady-state cycle.
    fn plan_stability(&self, cycle: u64) -> PlanStability {
        let _ = cycle;
        PlanStability {
            period: 1,
            stable: 0,
        }
    }

    /// Skip `cycles` quiescent cycles in closed form, advancing internal
    /// counters (per-stream delivered tracks, the next-cycle cursor, any
    /// cycle-keyed bookkeeping) exactly as that many
    /// [`plan_cycle_into`](SchemeScheduler::plan_cycle_into) calls
    /// would, without planning them.
    ///
    /// The caller guarantees `cycles` is a multiple of the current
    /// [`PlanStability::period`] and does not exceed the `stable` window
    /// reported for the current cycle. Must not allocate. The default
    /// no-op matches the default zero-stability report.
    fn fast_forward(&mut self, cycles: u64) {
        let _ = cycles;
    }

    /// Monotone counter bumped by every state change that invalidates a
    /// previously reported stability window (`admit`, `release`,
    /// `on_disk_failure`, `on_disk_repair`). The simulator re-validates
    /// the epoch around its probe cycles before multiplying deltas.
    fn plan_epoch(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_labels() {
        assert_eq!(SchemeKind::StreamingRaid.abbrev(), "SR");
        assert_eq!(SchemeKind::NonClustered.to_string(), "Non-clustered");
        assert_eq!(SchemeKind::ALL.len(), 4);
    }

    #[test]
    fn admission_error_display() {
        let e = AdmissionError::AtCapacity {
            active: 10,
            limit: 10,
        };
        assert!(e.to_string().contains("10"));
    }
}
