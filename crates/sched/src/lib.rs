//! # mms-sched — cycle-based scheduling substrate
//!
//! Implements the scheduling disciplines of *Berson, Golubchik & Muntz
//! (SIGMOD 1995)* on top of the layout, parity, and buffer substrates:
//!
//! | Scheduler | Paper section | `k` | `k'` | Normal-mode parity reads |
//! |---|---|---|---|---|
//! | [`StreamingRaidScheduler`] | §2 (Tobagi et al.'s Streaming RAID) | `C−1` | `C−1` | yes, every cycle |
//! | [`StaggeredScheduler`] | §2 (Staggered-group) | `C−1` | `1` | yes, at each read cycle |
//! | [`NonClusteredScheduler`] | §3 | `1` | `1` | no (degraded mode only) |
//! | [`ImprovedScheduler`] | §4 | `C−1` | `C−1` | no (parity on next cluster) |
//!
//! [`GroupedScheduler`] generalizes the SR/SG pair to any `k′ | C−1`
//! (the GSS-style continuum of the paper's reference \[3\]), and
//! [`BaselineScheduler`] is the unprotected striped
//! server of Section 1 — no parity at all — the quantitative foil
//! ("without some form of fault tolerance, such a system is not likely to
//! be acceptable").
//!
//! All four share the cycle model of Section 2: during each time period
//! data for each active stream is read into memory while the data read in
//! the previous cycle is transmitted; reads within a cycle are unordered so
//! one maximum seek bounds the cycle's disk time (`T(r) = τ_seek +
//! r·τ_trk`), which yields the per-disk, per-cycle **slot** capacity used
//! for admission control.
//!
//! Each scheduler exposes the same [`SchemeScheduler`] interface: admit
//! streams, plan one cycle's reads/deliveries, and react to disk failures
//! and repairs. Failure reactions implement the paper's mechanisms
//! exactly — Streaming RAID and Staggered-group mask failures with the
//! already-read parity; the Non-clustered scheduler performs the Figure 6
//! *simple* or Figure 7 *delayed* transition to degraded mode (losing the
//! exact track sets shown in those figures); the Improved-bandwidth
//! scheduler performs Section 4's cascading "shift to the right".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod cycle;
mod grouped;
mod improved;
mod nonclustered;
mod plan;
mod staggered;
mod streaming_raid;
mod streams;
mod traits;

pub use baseline::BaselineScheduler;
pub use cycle::CycleConfig;
pub use grouped::GroupedScheduler;
pub use improved::ImprovedScheduler;
pub use nonclustered::{NonClusteredScheduler, TransitionPolicy};
pub use plan::{CyclePlan, Delivery, LossReason, LostBlock, PlannedRead, ReadPurpose};
pub use staggered::StaggeredScheduler;
pub use streaming_raid::StreamingRaidScheduler;
pub use streams::{StreamId, StreamInfo};
pub use traits::{
    emit_mode_transition, AdmissionError, FailureReport, PlanStability, RetireError, SchemeKind,
    SchemeScheduler,
};
