//! The Non-clustered scheme's shared buffer servers under load: Eq. 14's
//! per-server sizing must hold while a degraded cluster runs
//! group-at-a-time, and the server must drain and detach on repair.

use mms_disk::{Bandwidth, DiskId, DiskParams};
use mms_layout::{BandwidthClass, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId};
use mms_sched::{CycleConfig, NonClusteredScheduler, SchemeScheduler, TransitionPolicy};

fn make(slots_b0_mb: f64, objects: u64, tracks: u64) -> NonClusteredScheduler {
    let geo = Geometry::clustered(10, 5).unwrap();
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 100_000);
    for i in 0..objects {
        catalog
            .add(MediaObject::new(
                ObjectId(i),
                format!("m{i}"),
                tracks,
                BandwidthClass::Custom(Bandwidth::from_megabytes(slots_b0_mb)),
            ))
            .unwrap();
    }
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabytes(slots_b0_mb),
        1,
        1,
    );
    NonClusteredScheduler::new(cfg, catalog, TransitionPolicy::Simple, 2)
}

#[test]
fn degraded_cluster_occupies_its_server_within_eq14_sizing() {
    // Full load at one slot per disk (b0 = 1 MB/s): the degraded
    // cluster's group-at-a-time buffers live on the attached server and
    // never exceed C(C+1)/2 × slots = 15 tracks.
    let mut s = make(1.0, 12, 4);
    let mut next_obj = 0u64;
    for t in 0..40u64 {
        if t >= 1 && next_obj < 12 {
            s.admit(ObjectId(next_obj), t).unwrap();
            next_obj += 1;
        }
        if t == 6 {
            s.on_disk_failure(DiskId(1), 6, false);
        }
        s.plan_cycle(t);
        if t > 8 {
            let pool = s
                .servers()
                .iter()
                .find(|srv| srv.serving() == Some(0))
                .expect("cluster 0 attached")
                .pool();
            assert!(pool.in_use() <= pool.capacity().unwrap(), "cycle {t}");
        }
    }
    // The server actually carried load (group-at-a-time buffering).
    let peak = s
        .servers()
        .iter()
        .find(|srv| srv.serving() == Some(0))
        .unwrap()
        .pool()
        .high_water();
    assert!(peak > 0, "server never used");
    assert!(peak <= 15, "peak {peak} exceeds Eq. 14 sizing");
}

#[test]
fn repair_detaches_and_resets_the_server() {
    let mut s = make(1.0, 6, 4);
    for t in 0..3u64 {
        if t >= 1 {
            s.admit(ObjectId(t - 1), t).unwrap();
        }
        s.plan_cycle(t);
    }
    s.on_disk_failure(DiskId(2), 3, false);
    for t in 3..10u64 {
        s.plan_cycle(t);
    }
    assert_eq!(s.servers().busy(), 1);
    s.on_disk_repair(DiskId(2), 10);
    assert_eq!(s.servers().busy(), 0);
    for srv in s.servers().iter() {
        assert_eq!(srv.pool().in_use(), 0, "detached server must be empty");
    }
    // A later failure on the other cluster reattaches cleanly.
    s.on_disk_failure(DiskId(6), 10, false);
    assert_eq!(s.servers().busy(), 1);
}

#[test]
fn two_degraded_clusters_occupy_two_servers() {
    let mut s = make(1.0, 8, 4);
    for t in 0..3u64 {
        if t >= 1 {
            s.admit(ObjectId(t - 1), t).unwrap();
        }
        s.plan_cycle(t);
    }
    s.on_disk_failure(DiskId(0), 3, false);
    s.on_disk_failure(DiskId(7), 3, false);
    assert_eq!(s.servers().busy(), 2);
    // Both clusters keep serving (with their bounded transition losses).
    for t in 3..16u64 {
        s.plan_cycle(t);
    }
}
