//! Reproduction of the paper's Figures 5, 6, and 7: the Non-clustered
//! scheme's normal-mode schedule and its two degraded-mode transitions.
//!
//! The scenario (Section 3): one cluster of `C = 5` disks (4 data + 1
//! parity), one read slot per disk per cycle, streams staggered one disk
//! position apart. Disk 2 fails "just before the start of cycle 1" of the
//! figures, which maps to scheduler cycle 4 here (streams U, W, Y started
//! at cycles 1, 2, 3; stream A starts at the failure cycle itself).
//!
//! Paper ground truth:
//! * Figure 6 (simple transition): tracks lost = {Y1, U3, W3, Y3}
//!   (displaced by the shift) ∪ {W2, Y2} (on the failed disk) — 6 tracks.
//! * Figure 7 (delayed transition): tracks lost = {W2, Y2} (failed disk,
//!   unreconstructable since W0/W1/Y0 were delivered and discarded) ∪
//!   {Y3} (displaced by A3's moved-up read) — 3 tracks.

use mms_disk::{Bandwidth, DiskId, DiskParams};
use mms_layout::{
    BandwidthClass, BlockAddr, BlockKind, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId,
};
use mms_sched::{
    CycleConfig, LossReason, NonClusteredScheduler, SchemeScheduler, StreamId, TransitionPolicy,
};
use std::collections::BTreeSet;

/// Stream roles, named as in the figures.
const U: u64 = 0;
const W: u64 = 1;
const Y: u64 = 2;
const A: u64 = 3;
const C_: u64 = 4;
const E: u64 = 5;
const G: u64 = 6;
const I: u64 = 7;

/// Build the figure scenario: objects U, W, Y, A, C, E, G, I, each one
/// full parity group (4 tracks), all on the single cluster.
fn scenario(policy: TransitionPolicy) -> (NonClusteredScheduler, Vec<(u64, StreamId)>) {
    let geo = Geometry::clustered(5, 5).unwrap();
    let layout = ClusteredLayout::new(geo);
    let mut catalog = Catalog::new(layout, 10_000);
    for oid in [U, W, Y, A, C_, E, G, I] {
        catalog
            .add(MediaObject::new(
                ObjectId(oid),
                format!("obj{oid}"),
                4,
                BandwidthClass::Custom(Bandwidth::from_megabytes(1.0)),
            ))
            .unwrap();
    }
    // B = 50 KB at 1 MB/s: T_cyc = 50 ms; slots/disk = (50 − 25)/20 = 1.
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabytes(1.0),
        1,
        1,
    );
    assert_eq!(cfg.slots_per_disk(), 1, "figure assumes one slot per disk");
    let mut sched = NonClusteredScheduler::new(cfg, catalog, policy, 1);

    let mut ids = Vec::new();
    // U starts at cycle 1, W at 2, Y at 3 (positions 3, 2, 1 at cycle 4).
    for (oid, at) in [(U, 1), (W, 2), (Y, 3)] {
        // plan cycles up to `at` lazily below; admissions may happen ahead
        // of planning as long as they are not in the past.
        ids.push((oid, sched.admit(ObjectId(oid), at).unwrap()));
    }
    (sched, ids)
}

/// Lost tracks as `(object, index)` plus the per-loss reason detail.
type LossAudit = (BTreeSet<(u64, u32)>, Vec<(u64, u32, LossReason)>);

/// Drive the scenario through the failure and collect every lost track.
fn run_figure(policy: TransitionPolicy) -> LossAudit {
    let (mut sched, mut ids) = scenario(policy);

    // Plan cycles 0..4; admit A/C/E/G/I at their start cycles.
    for t in 0..4u64 {
        sched.plan_cycle(t);
        if t == 3 {
            ids.push((A, sched.admit(ObjectId(A), 4).unwrap()))
        }
    }

    // Disk 2 fails just before cycle 4 (figure cycle 1).
    let report = sched.on_disk_failure(DiskId(2), 4, false);
    assert!(!report.catastrophic);

    // The failure report pre-announces the unreconstructable losses; every
    // loss (including displacements) also surfaces as a hiccup at its
    // delivery cycle, which is what we collect.
    let announced: BTreeSet<(u64, u32)> = report
        .lost
        .iter()
        .filter_map(|l| match l.addr.kind {
            BlockKind::Data(ix) => Some((l.addr.object.0, ix)),
            BlockKind::Parity => None,
        })
        .collect();

    let mut lost = BTreeSet::new();
    let mut detail = Vec::new();
    for t in 4..16u64 {
        let plan = sched.plan_cycle(t);
        for h in &plan.hiccups {
            if let BlockKind::Data(ix) = h.addr.kind {
                lost.insert((h.addr.object.0, ix));
                detail.push((h.addr.object.0, ix, h.reason));
            }
        }
        // Admit the follow-on streams C, E, G, I at cycles 5..8.
        match t {
            4 => ids.push((C_, sched.admit(ObjectId(C_), 5).unwrap())),
            5 => ids.push((E, sched.admit(ObjectId(E), 6).unwrap())),
            6 => ids.push((G, sched.admit(ObjectId(G), 7).unwrap())),
            7 => ids.push((I, sched.admit(ObjectId(I), 8).unwrap())),
            _ => {}
        }
    }
    assert!(
        announced.is_subset(&lost),
        "failure report must pre-announce a subset of the realized losses"
    );
    (lost, detail)
}

#[test]
fn figure5_normal_mode_schedule() {
    // Before the failure, each cycle reads exactly one track per stream
    // from consecutive disks, and no parity is ever read.
    let (mut sched, _ids) = scenario(TransitionPolicy::Simple);
    let p1 = sched.plan_cycle(0);
    assert_eq!(p1.total_reads(), 0);
    let p1 = sched.plan_cycle(1);
    // U0 on disk 0.
    assert_eq!(p1.total_reads(), 1);
    assert_eq!(p1.reads_on(DiskId(0)).len(), 1);
    let p2 = sched.plan_cycle(2);
    // W0 on disk 0, U1 on disk 1.
    assert_eq!(p2.total_reads(), 2);
    assert_eq!(
        p2.reads_on(DiskId(0))[0].addr,
        BlockAddr::data(ObjectId(W), 0, 0)
    );
    assert_eq!(
        p2.reads_on(DiskId(1))[0].addr,
        BlockAddr::data(ObjectId(U), 0, 1)
    );
    let p3 = sched.plan_cycle(3);
    // Y0 / W1 / U2 on disks 0 / 1 / 2; deliveries lag one cycle.
    assert_eq!(p3.total_reads(), 3);
    assert_eq!(
        p3.reads_on(DiskId(2))[0].addr,
        BlockAddr::data(ObjectId(U), 0, 2)
    );
    assert_eq!(p3.deliveries.len(), 2);
    // Parity disk (disk 4) is never touched in normal mode.
    for plan in [&p1, &p2, &p3] {
        assert!(plan.reads_on(DiskId(4)).is_empty());
    }
}

#[test]
fn figure6_simple_transition_loses_exactly_the_papers_six_tracks() {
    let (lost, detail) = run_figure(TransitionPolicy::Simple);
    let expect: BTreeSet<(u64, u32)> = [
        (Y, 1), // displaced by A1's moved-up read
        (W, 2), // on the failed disk
        (Y, 2), // on the failed disk
        (U, 3), // displaced by A3's moved-up read
        (W, 3), // displaced
        (Y, 3), // displaced
    ]
    .into_iter()
    .collect();
    assert_eq!(lost, expect, "detail: {detail:?}");
    // Reasons split exactly as the paper describes: 2 failed-disk, 4 shift.
    let failed = detail
        .iter()
        .filter(|(_, _, r)| *r == LossReason::FailedDisk)
        .count();
    let displaced = detail
        .iter()
        .filter(|(_, _, r)| *r == LossReason::Displaced)
        .count();
    assert_eq!((failed, displaced), (2, 4));
}

#[test]
fn figure7_delayed_transition_loses_exactly_three_tracks() {
    let (lost, detail) = run_figure(TransitionPolicy::Delayed);
    let expect: BTreeSet<(u64, u32)> = [
        (W, 2), // failed disk; W0, W1 already delivered and discarded
        (Y, 2), // failed disk; Y0 already delivered
        (Y, 3), // displaced by A3's read moved up to A's deadline
    ]
    .into_iter()
    .collect();
    assert_eq!(lost, expect, "detail: {detail:?}");
}

#[test]
fn delayed_never_loses_more_than_simple() {
    let (simple, _) = run_figure(TransitionPolicy::Simple);
    let (delayed, _) = run_figure(TransitionPolicy::Delayed);
    assert!(delayed.len() <= simple.len());
    assert!(delayed.is_subset(&simple));
}

#[test]
fn stream_a_is_fully_delivered_with_reconstruction() {
    // Stream A (group starting at the failure cycle) must not lose any
    // track under either policy: A2 is reconstructed from parity.
    for policy in [TransitionPolicy::Simple, TransitionPolicy::Delayed] {
        let (lost, _) = run_figure(policy);
        assert!(
            lost.iter().all(|&(oid, _)| oid != A),
            "A lost tracks under {policy:?}"
        );
    }
}

#[test]
fn follow_on_streams_are_clean_in_degraded_mode() {
    // C, E, G, I begin after the failure: degraded mode masks the failed
    // disk for them with no hiccups at all.
    for policy in [TransitionPolicy::Simple, TransitionPolicy::Delayed] {
        let (lost, _) = run_figure(policy);
        for oid in [C_, E, G, I] {
            assert!(
                lost.iter().all(|&(o, _)| o != oid),
                "obj{oid} lost tracks under {policy:?}"
            );
        }
    }
}

/// Render one mode-transition event as `from->to@cycle` for sequence
/// assertions.
fn transition_sig(e: &mms_telemetry::EventRecord) -> String {
    format!(
        "{}->{}@{}",
        e.field("from").unwrap(),
        e.field("to").unwrap(),
        e.field("cycle").unwrap()
    )
}

#[test]
fn telemetry_counts_exactly_the_papers_lost_tracks() {
    // The `sched.tracks_lost` counter must agree with the figures'
    // bounded-loss analysis: 6 tracks under the simple transition
    // (2 on the failed disk + 4 displaced), 3 under the delayed one.
    for (policy, total, failed, displaced) in [
        (TransitionPolicy::Simple, 6, 2, 4),
        (TransitionPolicy::Delayed, 3, 2, 1),
    ] {
        let recorder = mms_telemetry::Recorder::new(mms_telemetry::Level::Info);
        let guard = recorder.install();
        let _ = run_figure(policy);
        drop(guard);
        let snap = recorder.snapshot();
        assert_eq!(
            snap.counter_total("sched.tracks_lost"),
            total,
            "{policy:?}: total lost"
        );
        let by_reason = |reason: &'static str| {
            snap.counter(
                "sched.tracks_lost",
                &mms_telemetry::Labels::new(vec![
                    ("scheme", "NC".into()),
                    ("reason", reason.into()),
                ]),
            )
        };
        assert_eq!(by_reason("failed-disk"), failed, "{policy:?}: failed-disk");
        assert_eq!(by_reason("displaced"), displaced, "{policy:?}: displaced");
    }
}

#[test]
fn telemetry_emits_the_expected_transition_sequence() {
    // Fail at cycle 4, repair at cycle 8: each policy must announce
    // exactly normal->degraded at the failure and degraded->normal at
    // the repair, tagged with its own policy label.
    for policy in [TransitionPolicy::Simple, TransitionPolicy::Delayed] {
        let recorder = mms_telemetry::Recorder::new(mms_telemetry::Level::Info);
        let guard = recorder.install();
        let (mut sched, _ids) = scenario(policy);
        for t in 0..4 {
            sched.plan_cycle(t);
        }
        sched.on_disk_failure(DiskId(2), 4, false);
        for t in 4..8 {
            sched.plan_cycle(t);
        }
        sched.on_disk_repair(DiskId(2), 8);
        drop(guard);

        let events = recorder.take_events();
        let transitions: Vec<String> = events
            .iter()
            .filter(|e| e.name == "mode_transition")
            .map(transition_sig)
            .collect();
        assert_eq!(
            transitions,
            vec![
                "normal->degraded@4".to_string(),
                "degraded->normal@8".to_string()
            ],
            "{policy:?}"
        );
        let expect_policy = match policy {
            TransitionPolicy::Simple => "simple",
            TransitionPolicy::Delayed => "delayed",
        };
        for e in events.iter().filter(|e| e.name == "mode_transition") {
            assert_eq!(e.field("policy").unwrap().to_string(), expect_policy);
            assert_eq!(e.field("scheme").unwrap().to_string(), "NC");
        }
    }
}

#[test]
fn repair_returns_cluster_to_normal_mode() {
    let (mut sched, _ids) = scenario(TransitionPolicy::Simple);
    for t in 0..4 {
        sched.plan_cycle(t);
    }
    sched.on_disk_failure(DiskId(2), 4, false);
    for t in 4..8 {
        sched.plan_cycle(t);
    }
    sched.on_disk_repair(DiskId(2), 8);
    // A fresh stream after repair runs entirely in normal mode: one read
    // per cycle, no parity.
    let id = sched.admit(ObjectId(I), 8).unwrap();
    for t in 8..13 {
        let p = sched.plan_cycle(t);
        assert!(p.reads_on(DiskId(4)).is_empty(), "cycle {t}");
        assert!(p.hiccups.is_empty(), "cycle {t}");
    }
    assert!(sched.stream_info(id).is_none(), "stream finished cleanly");
}
