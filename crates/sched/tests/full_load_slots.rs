//! At full load, the per-disk slot budget is absolute: no plan — normal,
//! transition, or degraded — may ever exceed it, for any scheme, policy,
//! group size, or failed-disk position. (Found by the transition
//! ablation: reconstruction reads at the transition-window boundary can
//! transiently exceed capacity and must be displaced, not overloaded.)

use mms_disk::{Bandwidth, DiskId, DiskParams};
use mms_layout::{BandwidthClass, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId};
use mms_sched::{CycleConfig, NonClusteredScheduler, SchemeScheduler, TransitionPolicy};

fn run_full_load(c: usize, failed: u32, policy: TransitionPolicy) {
    let geo = Geometry::clustered(c, c).unwrap();
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 100_000);
    let bpg = c - 1;
    for i in 0..(4 * bpg) as u64 {
        catalog
            .add(MediaObject::new(
                ObjectId(i),
                format!("s{i}"),
                bpg as u64,
                BandwidthClass::Custom(Bandwidth::from_megabytes(1.0)),
            ))
            .unwrap();
    }
    // One slot per disk per cycle.
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabytes(1.0),
        1,
        1,
    );
    assert_eq!(cfg.slots_per_disk(), 1);
    let mut sched = NonClusteredScheduler::new(cfg, catalog, policy, 2);
    let cap = sched.config().slots_per_disk();

    let fail_cycle = bpg as u64;
    let mut next_obj = 0u64;
    for t in 0..(5 * bpg as u64) {
        if t >= 1 && next_obj < (4 * bpg) as u64 {
            sched.admit(ObjectId(next_obj), t).unwrap();
            next_obj += 1;
        }
        if t == fail_cycle {
            sched.on_disk_failure(DiskId(failed), t, false);
        }
        let plan = sched.plan_cycle(t);
        for (disk, reads) in &plan.reads {
            assert!(
                reads.len() <= cap,
                "C={c} failed={failed} {policy:?}: disk {disk} overloaded \
                 with {} reads at cycle {t}",
                reads.len()
            );
        }
    }
}

#[test]
fn slot_budget_is_never_exceeded_under_full_load() {
    for c in [4usize, 5, 6, 8] {
        for failed in 0..c as u32 {
            for policy in [TransitionPolicy::Simple, TransitionPolicy::Delayed] {
                run_full_load(c, failed, policy);
            }
        }
    }
}
