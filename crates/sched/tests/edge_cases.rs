//! Scheduler edge cases the figures don't cover: parity-disk failures,
//! failures between read cycles, repairs mid-schedule, and admission
//! classes across clusters.

use mms_disk::{Bandwidth, DiskId, DiskParams};
use mms_layout::{BandwidthClass, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId};
use mms_sched::{
    CycleConfig, NonClusteredScheduler, SchemeScheduler, StaggeredScheduler, TransitionPolicy,
};

fn catalog(disks: usize, c: usize, objects: u64, tracks: u64) -> Catalog<ClusteredLayout> {
    let geo = Geometry::clustered(disks, c).unwrap();
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 100_000);
    for i in 0..objects {
        catalog
            .add(MediaObject::new(
                ObjectId(i),
                format!("m{i}"),
                tracks,
                BandwidthClass::Mpeg1,
            ))
            .unwrap();
    }
    catalog
}

#[test]
fn nc_parity_disk_failure_keeps_normal_mode() {
    // The parity disk holds no data in normal NC operation: losing it
    // must change nothing (no degraded mode, no buffer server, no
    // hiccups) — only protection is gone.
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabits(1.5),
        1,
        1,
    );
    let mut s =
        NonClusteredScheduler::new(cfg, catalog(10, 5, 2, 16), TransitionPolicy::Delayed, 2);
    s.admit(ObjectId(0), 0).unwrap();
    s.plan_cycle(0);
    let report = s.on_disk_failure(DiskId(4), 1, false); // cluster 0's parity disk
    assert!(!report.catastrophic);
    assert!(report.lost.is_empty());
    let mut delivered = 0;
    for t in 1..20 {
        let p = s.plan_cycle(t);
        assert!(p.hiccups.is_empty(), "cycle {t}");
        delivered += p.deliveries.len();
    }
    assert_eq!(delivered, 16);
    // No buffer server was consumed for a parity-only failure.
    assert_eq!(s.servers().busy(), 0);
}

#[test]
fn nc_parity_then_data_failure_is_catastrophic_and_loses_blocks() {
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabits(1.5),
        1,
        1,
    );
    let mut s = NonClusteredScheduler::new(cfg, catalog(10, 5, 2, 24), TransitionPolicy::Simple, 2);
    s.admit(ObjectId(0), 0).unwrap();
    s.plan_cycle(0);
    assert!(!s.on_disk_failure(DiskId(4), 1, false).catastrophic);
    let second = s.on_disk_failure(DiskId(1), 1, false);
    assert!(second.catastrophic);
    // Blocks on the dead data disk hiccup with no parity to rebuild from.
    let mut hiccups = 0;
    for t in 1..30 {
        hiccups += s.plan_cycle(t).hiccups.len();
    }
    assert!(hiccups > 0);
}

#[test]
fn staggered_failure_between_read_cycles_is_invisible() {
    // SG reads a whole group (with parity) every C−1 cycles. A failure
    // that arrives *and is repaired* strictly between a stream's read
    // cycles never surfaces: the data was already resident.
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabits(1.5),
        4,
        1,
    );
    let mut s = StaggeredScheduler::new(cfg, catalog(10, 5, 1, 8));
    s.admit(ObjectId(0), 0).unwrap();
    let p0 = s.plan_cycle(0); // read group 0 (cycles 0..4 deliver it)
    assert_eq!(p0.total_reads(), 5);
    s.on_disk_failure(DiskId(0), 1, false);
    let p1 = s.plan_cycle(1);
    assert!(p1.hiccups.is_empty());
    s.on_disk_repair(DiskId(0), 2);
    for t in 2..10 {
        let p = s.plan_cycle(t);
        assert!(p.hiccups.is_empty(), "cycle {t}");
        assert!(
            p.deliveries.iter().all(|d| !d.reconstructed),
            "nothing should need reconstruction"
        );
    }
}

#[test]
fn staggered_admission_spreads_over_phases_and_clusters() {
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabits(1.5),
        4,
        1,
    );
    // Objects 0 and 1 start on clusters 0 and 1 (round-robin).
    let mut s = StaggeredScheduler::new(cfg, catalog(10, 5, 2, 400));
    let slots = s.config().slots_per_disk();
    // Fill phase 0 of object 0's trajectory…
    for _ in 0..slots {
        s.admit(ObjectId(0), 0).unwrap();
    }
    assert!(s.admit(ObjectId(0), 0).is_err());
    // …object 1 lives on the other cluster trajectory: same phase admits.
    for _ in 0..slots {
        s.admit(ObjectId(1), 0).unwrap();
    }
    assert!(s.admit(ObjectId(1), 0).is_err());
    // And a different phase still has room for both.
    assert!(s.admit(ObjectId(0), 1).is_ok());
    assert!(s.admit(ObjectId(1), 1).is_ok());
    assert_eq!(s.active_streams(), 2 * slots + 2);
}

#[test]
fn nc_failure_on_idle_cluster_costs_nothing() {
    // A disk fails in a cluster no in-flight group touches at that
    // moment: the transition finds nothing to move and nothing is lost;
    // later groups arriving there run group-at-a-time cleanly.
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabits(1.5),
        1,
        1,
    );
    let mut s = NonClusteredScheduler::new(cfg, catalog(10, 5, 1, 16), TransitionPolicy::Simple, 2);
    s.admit(ObjectId(0), 0).unwrap();
    // Stream starts on cluster 0 (groups 0, 2 there; 1, 3 on cluster 1).
    // Fail a cluster-1 disk while the stream is mid-group on cluster 0.
    s.plan_cycle(0);
    let report = s.on_disk_failure(DiskId(6), 1, false);
    assert!(report.lost.is_empty());
    let mut hiccups = 0;
    let mut delivered = 0;
    for t in 1..20 {
        let p = s.plan_cycle(t);
        hiccups += p.hiccups.len();
        delivered += p.deliveries.len();
    }
    assert_eq!(hiccups, 0);
    assert_eq!(delivered, 16);
}

mod ib_edges {
    use super::*;
    use mms_layout::ImprovedLayout;
    use mms_sched::ImprovedScheduler;

    fn ib(disks: usize, reserve: usize, objects: u64) -> ImprovedScheduler {
        let geo = Geometry::improved(disks, 5).unwrap();
        let mut catalog = Catalog::new(ImprovedLayout::new(geo), 100_000);
        for i in 0..objects {
            catalog
                .add(MediaObject::new(
                    ObjectId(i),
                    format!("m{i}"),
                    64,
                    BandwidthClass::Mpeg1,
                ))
                .unwrap();
        }
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            4,
            4,
        );
        ImprovedScheduler::new(cfg, catalog, reserve)
    }

    #[test]
    fn ib_repair_mid_shift_restores_local_reads() {
        let mut s = ib(8, 1, 1);
        s.admit(ObjectId(0), 0).unwrap();
        s.on_disk_failure(DiskId(1), 0, false);
        let p0 = s.plan_cycle(0);
        // One parity read on cluster 1 during the shift.
        assert!(p0
            .reads
            .values()
            .flatten()
            .any(|r| r.purpose == mms_sched::ReadPurpose::Parity));
        s.on_disk_repair(DiskId(1), 1);
        for t in 1..8 {
            let p = s.plan_cycle(t);
            assert!(
                p.reads
                    .values()
                    .flatten()
                    .all(|r| r.purpose == mms_sched::ReadPurpose::Delivery),
                "cycle {t}: shift must stop after repair"
            );
            assert!(p.hiccups.is_empty(), "cycle {t}");
        }
        assert!(s.last_shift_path().is_empty());
    }

    #[test]
    fn ib_admission_capacity_is_exact() {
        // Admission fills every (cluster-phase) class to the usable slot
        // count and not one stream more.
        let mut s = ib(12, 2, 3); // 3 clusters; objects start round-robin
        let cap = s.stream_capacity();
        let mut admitted = 0;
        let mut denied_streak = 0;
        let mut t = 0u64;
        while denied_streak < 6 {
            let obj = ObjectId(admitted as u64 % 3);
            if s.admit(obj, t).is_ok() {
                admitted += 1;
                denied_streak = 0;
            } else {
                denied_streak += 1;
                s.plan_cycle(t);
                t += 1;
            }
        }
        assert_eq!(admitted, cap, "capacity must be exactly reachable");
        // And the resulting schedule respects every slot budget.
        let capacity = s.config().slots_per_disk();
        for tt in t..t + 6 {
            let p = s.plan_cycle(tt);
            for reads in p.reads.values() {
                assert!(reads.len() <= capacity);
            }
        }
    }
}

mod sr_edges {
    use super::*;
    use mms_sched::StreamingRaidScheduler;

    #[test]
    fn sr_admission_capacity_is_exact() {
        let geo = Geometry::clustered(20, 5).unwrap();
        let mut cat = Catalog::new(ClusteredLayout::new(geo), 1_000_000);
        for i in 0..4u64 {
            cat.add(MediaObject::new(
                ObjectId(i),
                format!("m{i}"),
                100_000,
                BandwidthClass::Mpeg1,
            ))
            .unwrap();
        }
        let cfg = CycleConfig::new(
            DiskParams::paper_table1(),
            Bandwidth::from_megabits(1.5),
            4,
            4,
        );
        let mut s = StreamingRaidScheduler::new(cfg, cat);
        let cap = s.stream_capacity();
        let mut admitted = 0;
        let mut denied_streak = 0;
        let mut t = 0u64;
        while denied_streak < 6 {
            let obj = ObjectId(admitted as u64 % 4);
            if s.admit(obj, t).is_ok() {
                admitted += 1;
                denied_streak = 0;
            } else {
                denied_streak += 1;
                s.plan_cycle(t);
                t += 1;
            }
        }
        assert_eq!(admitted, cap);
        let capacity = s.config().slots_per_disk();
        for tt in t..t + 4 {
            let p = s.plan_cycle(tt);
            for reads in p.reads.values() {
                assert!(reads.len() <= capacity);
            }
        }
    }
}
