//! Failover-equivalence properties of the fleet tier.
//!
//! The headline contract: a *single* node failure under replicated
//! placement loses zero tracks, re-routed streams see hiccups bounded
//! by the consensus commit gap, and the re-route target is exactly the
//! right ring neighbor — the node-level image of the paper's IB
//! "shift one right" invariant that `mms-sched`'s single-server tests
//! pin down at disk level.

use mms_fleet::{
    fleet_mttds, fleet_mttf, Fleet, FleetBuilder, FleetCheck, FleetError, FleetEvent, NodeId,
    ShardedLoad,
};
use mms_server::disk::ReliabilityParams;
use mms_server::{Parallelism, RunConfig};
use mms_sim::{SplitMix64, StepMode};
use proptest::prelude::*;

/// The corpus-wide bound on a failover's decree-commit gap.
const GAP_BOUND: u64 = 64;

fn build_fleet(nodes: usize, movies: usize, tracks: u64, seed: u64) -> Fleet {
    FleetBuilder::new(nodes)
        .catalog(movies, tracks)
        .control_seed(seed)
        .build()
        .expect("standard fleet geometry always builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero tracks lost and bounded hiccups for any single node
    /// failure, node index, fleet size, and traffic seed.
    #[test]
    fn single_node_failure_loses_nothing(
        nodes in 3usize..7,
        victim_offset in 0usize..7,
        fail_at in 20u64..120,
        seed in 0u64..1_000,
    ) {
        let victim = victim_offset % nodes;
        let mut fleet = build_fleet(nodes, 2 * nodes, 300, seed);
        fleet.inject(FleetEvent::fail_node(fail_at, victim))
            .expect("future node failure enqueues");
        let mut rng = SplitMix64::new(seed);
        let report = fleet
            .run_with_traffic(fail_at + 300, 1.0, 0.271, &mut rng)
            .expect("single failure must never surface a hard error");
        let m = fleet.metrics();
        prop_assert_eq!(report.tracks_lost, 0, "replication must absorb one failure");
        prop_assert_eq!(m.tracks_lost, 0);
        prop_assert_eq!(m.data_loss_events, 0);
        prop_assert!(
            m.max_failover_gap <= GAP_BOUND,
            "failover waited {} cycles on consensus (bound {})",
            m.max_failover_gap, GAP_BOUND
        );
        prop_assert_eq!(fleet.stalled_sessions(), 0, "quorum held; no stream may stall");
        // The committed view agrees with the process view.
        prop_assert!(!fleet.control().view()[victim]);
    }

    /// The node-level IB-shift invariant: with node `v` down, every
    /// admission routes to the object's primary — except objects
    /// primary on `v`, which land on exactly `v+1` (their chained
    /// secondary), mirroring `PlacementMap::route`'s single-node
    /// guarantee through the whole fleet stack.
    #[test]
    fn failed_load_shifts_one_right(
        nodes in 3usize..7,
        victim_offset in 0usize..7,
        seed in 0u64..1_000,
    ) {
        let victim = victim_offset % nodes;
        let mut fleet = build_fleet(nodes, 3 * nodes, 300, seed);
        fleet.inject(FleetEvent::fail_node(0, victim))
            .expect("immediate node failure applies");
        // Let the NodeDown decree commit so routing state is settled.
        fleet.run(GAP_BOUND).expect("no data loss possible with no streams");
        for &object in fleet.placement().objects().to_vec().iter() {
            let primary = fleet.placement().primary(object)
                .expect("catalog object has a primary");
            let id = fleet.admit(object).expect("fleet has capacity for one stream each");
            let served = fleet.session_node(id).expect("admitted stream is live");
            if primary == NodeId(victim) {
                prop_assert_eq!(
                    served,
                    NodeId((victim + 1) % nodes),
                    "failed node's load must land on its right neighbor"
                );
            } else {
                prop_assert_eq!(served, primary);
            }
            fleet.release(id);
        }
    }
}

/// Adjacent double fault: replication is exhausted and the loss is the
/// *typed* verdict, not a panic or a silent zero.
#[test]
fn adjacent_double_fault_is_typed_data_loss() {
    let mut fleet = build_fleet(5, 10, 400, 7);
    fleet
        .inject(FleetEvent::fail_node(30, 1))
        .expect("enqueue first failure");
    fleet
        .inject(FleetEvent::fail_node(90, 2))
        .expect("enqueue adjacent failure");
    let mut rng = SplitMix64::new(7);
    let report = fleet
        .run_with_traffic(400, 2.0, 0.271, &mut rng)
        .expect("traffic runner absorbs data-loss verdicts");
    assert!(
        report.tracks_lost > 0,
        "both replicas down must lose the in-flight remainders"
    );
    assert_eq!(fleet.metrics().tracks_lost, report.tracks_lost);
    assert!(fleet.metrics().data_loss_events > 0);
}

/// The typed error surfaces from `step` itself when stepping manually.
#[test]
fn step_surfaces_data_loss_verdict() {
    let mut fleet = build_fleet(5, 10, 400, 11);
    // Seed streams everywhere, then kill an adjacent pair.
    let objects = fleet.placement().objects().to_vec();
    for &o in &objects {
        fleet.admit(o).expect("initial catalog admissions fit");
    }
    fleet
        .inject(FleetEvent::fail_node(5, 1))
        .expect("enqueue first failure");
    fleet
        .inject(FleetEvent::fail_node(40, 2))
        .expect("enqueue adjacent failure");
    let mut lost = 0u64;
    for _ in 0..200 {
        match fleet.step() {
            Ok(()) => {}
            Err(FleetError::DataLoss { tracks }) => lost += tracks,
            Err(e) => panic!("unexpected fleet error: {e}"),
        }
    }
    assert!(
        lost > 0,
        "adjacent double fault with live streams loses data"
    );
    assert_eq!(fleet.metrics().tracks_lost, lost);
}

/// Sharded million-session-style runs are bit-identical at 1, 2, and
/// 8 threads (the workspace determinism contract, fleet edition).
#[test]
fn sharded_sessions_thread_count_invariant() {
    let run = |threads: usize| {
        let mut fleet = FleetBuilder::new(4)
            .catalog(8, 200)
            .step_mode(StepMode::EventHorizon)
            .parallelism(Parallelism::threads(threads))
            .control_seed(42)
            .build()
            .expect("standard fleet geometry always builds");
        fleet
            .run_sharded_sessions(&ShardedLoad {
                cycles: 3_000,
                load: 0.9,
                seed: 42,
                ..ShardedLoad::default()
            })
            .expect("failure-free sharded run cannot error")
    };
    let base = run(1);
    assert!(base.offered > 0 && base.admitted > 0);
    for threads in [2, 8] {
        assert_eq!(
            run(threads),
            base,
            "shard report diverged at {threads} threads"
        );
    }
}

/// `RunConfig` drives the fleet builder the same way it drives
/// `ServerBuilder`: threads and step mode from one object.
#[test]
fn run_config_flows_into_fleet_builder() {
    let args: Vec<String> = ["--threads", "2", "--fast-forward"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let cfg = RunConfig::from_args(&args).expect("valid flags parse");
    let mut fleet = FleetBuilder::new(3)
        .catalog(6, 120)
        .run_config(&cfg)
        .build()
        .expect("standard fleet geometry always builds");
    // EventHorizon propagated to every node.
    for n in 0..3 {
        assert_eq!(fleet.node(n).step_mode(), StepMode::EventHorizon);
    }
    let report = fleet
        .run_sharded_sessions(&ShardedLoad {
            cycles: 500,
            ..ShardedLoad::default()
        })
        .expect("failure-free sharded run cannot error");
    assert!(report.offered > 0);
}

/// Fleet-level MTTF (chained declustering: adjacent pair is fatal)
/// must exceed fleet-level MTTDS at the same size only when quorum is
/// harder to break than adjacency — sanity-pin both estimators.
#[test]
fn fleet_reliability_estimators_are_sane() {
    // Stress-level node reliability (not the paper's disk figures):
    // with MTTF/MTTR = 10 a trial terminates in a handful of events,
    // where the paper's 300000:1 ratio needs ~1e5 events per trial —
    // the ordering property under test is ratio-independent.
    let rel = ReliabilityParams {
        mttf: mms_server::disk::Time::from_hours(1_000.0),
        mttr: mms_server::disk::Time::from_hours(100.0),
    };
    let mut rng = SplitMix64::new(1995);
    let mttf = fleet_mttf(4, rel, &mut rng, 200, Parallelism::Sequential);
    let mttds = fleet_mttds(4, rel, &mut rng, 200, Parallelism::Sequential);
    assert!(mttf.mean.as_hours() > 0.0);
    assert!(mttds.mean.as_hours() > 0.0);
    // With 4 nodes, quorum loss needs 2 concurrent failures anywhere
    // (6 pairs) while data loss needs an *adjacent* pair (4 of the 6):
    // MTTDS must not exceed MTTF beyond Monte-Carlo noise.
    assert!(
        mttds.mean.as_hours() <= mttf.mean.as_hours() * 1.25,
        "MTTDS {} h implausibly above MTTF {} h",
        mttds.mean.as_hours(),
        mttf.mean.as_hours()
    );
}

/// The corpus checks referenced by CI exist and carry the variants the
/// workflow greps for (compile-time pin against silent renames).
#[test]
fn corpus_check_surface_is_stable() {
    let _ = [
        FleetCheck::NoTracksLost,
        FleetCheck::ExpectDataLoss,
        FleetCheck::ExpectStalledStreams,
        FleetCheck::BoundedFailoverHiccups(GAP_BOUND),
    ];
    let (text, passed) =
        mms_fleet::scenario::run_corpus_rendered(Parallelism::Sequential, true, None);
    assert!(passed, "fleet corpus must hold in quick mode:\n{text}");
}
