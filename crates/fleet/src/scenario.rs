//! Scriptable fleet-level failure scenarios and the named corpus
//! behind `mms-ctl fleet corpus`.
//!
//! The single-server corpus (`mms_server::scenario`) scripts disk
//! deaths inside one node; this module scripts *node* deaths across
//! the fleet. Every case is fully deterministic — seeded traffic,
//! seeded consensus message delivery — so its rendered report is
//! byte-identical at any thread count, which CI asserts.

use crate::fleet::{FleetBuilder, FleetEvent, FleetMetrics, TrafficReport};
use mms_exec::Parallelism;
use mms_sim::{run_batch, SplitMix64};

/// A named, scripted fleet scenario.
#[derive(Debug, Clone)]
pub struct FleetScenario {
    /// Unique corpus name (CLI handle).
    pub name: &'static str,
    /// One-line human summary.
    pub summary: &'static str,
    /// Nodes in the ring.
    pub nodes: usize,
    /// Catalog size (uniform movies × tracks).
    pub movies: usize,
    /// Tracks per movie.
    pub tracks: u64,
    /// Cycles of Zipf/Poisson traffic to drive.
    pub cycles: u64,
    /// Poisson arrival rate, sessions per cycle (fleet-wide).
    pub rate: f64,
    /// Zipf skew over the catalog.
    pub theta: f64,
    /// Seed for both traffic and consensus delivery order.
    pub seed: u64,
    /// Scripted node/disk events.
    pub events: Vec<FleetEvent>,
    /// Invariants the run must satisfy.
    pub checks: Vec<FleetCheck>,
}

/// An invariant checked after a scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetCheck {
    /// Replication must absorb every failover: zero tracks lost.
    NoTracksLost,
    /// Replication must be exhausted at least once (negative control).
    ExpectDataLoss,
    /// No stream may end the run stuck waiting for a failover decree.
    NoStalledStreams,
    /// At least one stream must end the run stalled (quorum loss).
    ExpectStalledStreams,
    /// Worst per-stream failover hiccup is at most this many cycles
    /// (the consensus commit bound).
    BoundedFailoverHiccups(u64),
    /// The control plane re-elected a leader at least this many times.
    ReElected(u64),
    /// At least this many sessions were admitted.
    MinAdmitted(u64),
    /// At least this many live streams were failed over.
    ReRouted(u64),
}

/// Outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct FleetCaseReport {
    /// The scenario name.
    pub name: &'static str,
    /// Traffic aggregate of the run.
    pub traffic: TrafficReport,
    /// Fleet counters at the end of the run.
    pub metrics: FleetMetrics,
    /// Streams still in failover limbo at the end.
    pub stalled: usize,
    /// Leader elections the control plane performed.
    pub elections: u64,
    /// Per-check verdicts, in scenario order: `(check, held)`.
    pub verdicts: Vec<(FleetCheck, bool)>,
    /// A hard error (not a data-loss verdict — those are absorbed).
    pub error: Option<String>,
}

impl FleetCaseReport {
    /// Whether every check held and no hard error occurred.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.error.is_none() && self.verdicts.iter().all(|&(_, held)| held)
    }

    /// Render the report as stable, diffable text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(e) = &self.error {
            out.push_str(&format!("  ERROR {e}\n"));
            return out;
        }
        let m = &self.metrics;
        out.push_str(&format!(
            "  traffic: offered={} admitted={} rejected={} unavailable={}\n",
            self.traffic.offered,
            self.traffic.admitted,
            self.traffic.rejected,
            self.traffic.unavailable,
        ));
        out.push_str(&format!(
            "  failover: rounds={} re_routed={} dropped={} max_gap={} hiccup_cycles={}\n",
            m.failovers,
            m.re_routed_streams,
            m.dropped_on_failover,
            m.max_failover_gap,
            m.failover_hiccup_cycles,
        ));
        out.push_str(&format!(
            "  verdicts: tracks_lost={} data_loss_events={} stalled={} elections={}\n",
            m.tracks_lost, m.data_loss_events, self.stalled, self.elections,
        ));
        for (check, held) in &self.verdicts {
            out.push_str(&format!(
                "  [{}] {check:?}\n",
                if *held { "PASS" } else { "FAIL" }
            ));
        }
        out
    }
}

fn check_holds(check: FleetCheck, r: &FleetCaseReport) -> bool {
    let m = &r.metrics;
    match check {
        FleetCheck::NoTracksLost => m.tracks_lost == 0,
        FleetCheck::ExpectDataLoss => m.data_loss_events > 0,
        FleetCheck::NoStalledStreams => r.stalled == 0,
        FleetCheck::ExpectStalledStreams => r.stalled > 0,
        FleetCheck::BoundedFailoverHiccups(bound) => m.max_failover_gap <= bound,
        FleetCheck::ReElected(min) => r.elections >= min,
        FleetCheck::MinAdmitted(min) => r.traffic.admitted >= min,
        FleetCheck::ReRouted(min) => m.re_routed_streams >= min,
    }
}

/// Run one scenario to completion and evaluate its checks.
#[must_use]
pub fn run_case(case: &FleetScenario) -> FleetCaseReport {
    let mut report = FleetCaseReport {
        name: case.name,
        traffic: TrafficReport::default(),
        metrics: FleetMetrics::default(),
        stalled: 0,
        elections: 0,
        verdicts: Vec::new(),
        error: None,
    };
    let built = FleetBuilder::new(case.nodes)
        .catalog(case.movies, case.tracks)
        .control_seed(case.seed)
        .build();
    let mut fleet = match built {
        Ok(f) => f,
        Err(e) => {
            report.error = Some(e.to_string());
            return report;
        }
    };
    for &event in &case.events {
        if let Err(e) = fleet.inject(event) {
            report.error = Some(e.to_string());
            return report;
        }
    }
    let mut rng = SplitMix64::new(case.seed);
    match fleet.run_with_traffic(case.cycles, case.rate, case.theta, &mut rng) {
        Ok(t) => report.traffic = t,
        Err(e) => {
            report.error = Some(e.to_string());
            return report;
        }
    }
    report.metrics = *fleet.metrics();
    report.stalled = fleet.stalled_sessions();
    report.elections = fleet.control_stats().elections;
    report.verdicts = case
        .checks
        .iter()
        .map(|&c| (c, check_holds(c, &report)))
        .collect();
    report
}

/// Worst-case decree-commit gap the corpus tolerates: twice the
/// control plane's own bounded-commit test margin, with slack for a
/// concurrent election.
const HICCUP_BOUND: u64 = 64;

/// The named fleet scenario corpus (the `mms-ctl fleet corpus`
/// registry).
///
/// `quick` halves the traffic horizon of the longer soaks; scripted
/// events always stay inside the shortened horizon so verdicts are
/// mode-independent.
#[must_use]
pub fn corpus(quick: bool) -> Vec<FleetScenario> {
    let soak = |cycles: u64| if quick { cycles / 2 } else { cycles };
    vec![
        FleetScenario {
            name: "fleet-failover",
            summary: "one node dies mid-traffic; chained secondary absorbs every stream",
            nodes: 4,
            movies: 8,
            tracks: 120,
            cycles: soak(400),
            rate: 1.5,
            theta: 0.271,
            seed: 9501,
            events: vec![FleetEvent::fail_node(60, 2)],
            checks: vec![
                FleetCheck::NoTracksLost,
                FleetCheck::ReRouted(1),
                FleetCheck::BoundedFailoverHiccups(HICCUP_BOUND),
                FleetCheck::NoStalledStreams,
                FleetCheck::MinAdmitted(20),
            ],
        },
        FleetScenario {
            name: "fleet-leader-failover",
            summary: "the consensus leader itself dies; the ring elects its right neighbor",
            nodes: 4,
            movies: 8,
            tracks: 120,
            cycles: soak(400),
            rate: 1.5,
            theta: 0.271,
            seed: 9502,
            events: vec![FleetEvent::fail_node(50, 0)],
            checks: vec![
                FleetCheck::NoTracksLost,
                FleetCheck::ReElected(1),
                FleetCheck::BoundedFailoverHiccups(HICCUP_BOUND),
                FleetCheck::NoStalledStreams,
            ],
        },
        FleetScenario {
            name: "fleet-repair",
            summary: "fail then repair one node; primaries return only after the NodeUp decree",
            nodes: 4,
            movies: 8,
            tracks: 120,
            cycles: soak(400),
            rate: 1.5,
            theta: 0.271,
            seed: 9503,
            events: vec![
                FleetEvent::fail_node(50, 1),
                FleetEvent::repair_node(150, 1),
            ],
            checks: vec![
                FleetCheck::NoTracksLost,
                FleetCheck::NoStalledStreams,
                FleetCheck::MinAdmitted(20),
            ],
        },
        FleetScenario {
            name: "fleet-replication-exhausted",
            summary: "adjacent double fault with quorum intact: typed data loss, fleet survives",
            nodes: 5,
            movies: 10,
            // Long movies: the hold (tracks/k cycles) must exceed the
            // decree-commit gap, or every stream expires before the
            // second failover can find replication exhausted.
            tracks: 400,
            cycles: soak(400),
            rate: 2.0,
            theta: 0.271,
            seed: 9504,
            events: vec![FleetEvent::fail_node(40, 1), FleetEvent::fail_node(120, 2)],
            checks: vec![
                FleetCheck::ExpectDataLoss,
                FleetCheck::NoStalledStreams,
                FleetCheck::MinAdmitted(20),
            ],
        },
        FleetScenario {
            name: "fleet-quorum-loss",
            summary: "two of four nodes down: the second NodeDown decree can never commit",
            nodes: 4,
            movies: 8,
            tracks: 120,
            cycles: soak(400),
            rate: 1.5,
            theta: 0.271,
            seed: 9505,
            events: vec![FleetEvent::fail_node(40, 0), FleetEvent::fail_node(120, 2)],
            checks: vec![
                FleetCheck::NoTracksLost,
                FleetCheck::ExpectStalledStreams,
                FleetCheck::ReElected(1),
            ],
        },
        FleetScenario {
            name: "fleet-storm",
            summary: "rolling fail/repair storm, never two down at once: zero loss throughout",
            nodes: 6,
            movies: 12,
            tracks: 120,
            cycles: soak(600),
            rate: 2.0,
            theta: 0.271,
            seed: 9506,
            events: vec![
                FleetEvent::fail_node(40, 0),
                FleetEvent::repair_node(120, 0),
                FleetEvent::fail_node(180, 3),
                FleetEvent::repair_node(260, 3),
                FleetEvent::fail_node(320, 5),
                FleetEvent::repair_node(400, 5),
            ],
            checks: vec![
                FleetCheck::NoTracksLost,
                FleetCheck::BoundedFailoverHiccups(HICCUP_BOUND),
                FleetCheck::NoStalledStreams,
                FleetCheck::MinAdmitted(40),
            ],
        },
    ]
}

/// Find a corpus scenario by name.
#[must_use]
pub fn find(name: &str, quick: bool) -> Option<FleetScenario> {
    corpus(quick).into_iter().find(|c| c.name == name)
}

/// Run the whole corpus (or one named case) over the worker pool and
/// render every report. Returns the rendered text and whether every
/// check held. The text is bit-identical for every thread count.
#[must_use]
pub fn run_corpus_rendered(
    parallelism: Parallelism,
    quick: bool,
    only: Option<&str>,
) -> (String, bool) {
    let cases: Vec<FleetScenario> = corpus(quick)
        .into_iter()
        .filter(|c| only.is_none_or(|n| c.name == n))
        .collect();
    let reports = run_batch(parallelism, &cases, run_case);
    let mut out = String::new();
    let mut all_passed = true;
    for (case, report) in cases.iter().zip(&reports) {
        out.push_str(&format!("== {} — {}\n", case.name, case.summary));
        out.push_str(&report.render());
        all_passed &= report.passed();
    }
    out.push_str(if all_passed {
        "fleet corpus: all invariants held"
    } else {
        "fleet corpus: INVARIANT VIOLATIONS"
    });
    out.push('\n');
    (out, all_passed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique() {
        let cases = corpus(true);
        assert!(cases.len() >= 6, "fleet corpus shrank to {}", cases.len());
        let mut names: Vec<&str> = cases.iter().map(|c| c.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate fleet scenario names");
        assert!(find("fleet-failover", true).is_some());
        assert!(find("no-such-scenario", true).is_none());
    }

    #[test]
    fn corpus_passes_in_both_modes() {
        for quick in [true, false] {
            let (text, passed) = run_corpus_rendered(Parallelism::Sequential, quick, None);
            assert!(passed, "fleet corpus failed (quick={quick}):\n{text}");
        }
    }

    #[test]
    fn corpus_is_thread_count_invariant() {
        let base = run_corpus_rendered(Parallelism::threads(1), true, None);
        for threads in [2, 8] {
            let other = run_corpus_rendered(Parallelism::threads(threads), true, None);
            assert_eq!(
                base.0, other.0,
                "fleet corpus text diverged at {threads} threads"
            );
        }
    }
}
