//! # mms-fleet — sharded multi-node serving tier
//!
//! The paper's Improved Bandwidth scheme survives a *disk* failure by
//! shifting its load one to the right inside a server (Section 4.4).
//! This crate lifts the trick one level up: a [`Fleet`] of N whole
//! simulated [`mms_server::MultimediaServer`] nodes with the catalog
//! chained-declustered over them ([`PlacementMap`]), so a *node*
//! failure re-routes its streams to exactly one ring neighbor.
//!
//! Three layers:
//!
//! * [`placement`] — the pure, immutable shard map: object `i` is
//!   primary on node `i mod N`, replicated on `(i+1) mod N`.
//! * [`control`] — a seeded, deterministic replicated control plane:
//!   single-decree Paxos per log slot over SplitMix64-ordered message
//!   delivery. No wall clocks, no hash maps; node death, leader
//!   re-election, and catalog repair are just decrees in a log.
//! * [`fleet`] — the front-end: routes admissions through the
//!   placement and the *committed* liveness view, fails live streams
//!   over when a `NodeDown` decree commits, and reports the typed
//!   [`FleetError::DataLoss`] only when replication is exhausted.
//!
//! Everything is deterministic: same seeds → byte-identical traffic,
//! decree logs, and scenario reports at any thread count. The
//! [`scenario`] module scripts node-level fault cases the same way the
//! single-server corpus scripts disk faults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod fleet;
pub mod placement;
pub mod scenario;

pub use control::{Ballot, Command, ControlPlane, ControlStats};
pub use fleet::{
    fleet_mttds, fleet_mttf, Fleet, FleetBuilder, FleetError, FleetEvent, FleetMetrics,
    FleetStreamId, ShardReport, ShardedLoad, TrafficReport,
};
pub use placement::{NodeId, PlacementMap, Role, RouteError};
pub use scenario::{FleetCaseReport, FleetCheck, FleetScenario};
