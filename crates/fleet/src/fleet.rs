//! The fleet front-end: N simulated [`MultimediaServer`] nodes behind
//! one admission router, with whole-node failover.
//!
//! A [`Fleet`] owns its nodes, a chained-declustered
//! [`PlacementMap`], and a deterministic [`ControlPlane`]. Admissions
//! route to an object's primary node, or to its chained secondary when
//! the primary is dead or its catalog replica is out of sync. A node
//! failure is just another scriptable event ([`FleetEvent::NodeFail`]):
//! the data plane stops routing to the node immediately, the control
//! plane replicates a `NodeDown` decree, and once that decree commits
//! the node's live streams are failed over to their secondaries. The
//! cycles a stream spends waiting for the decree are its *failover
//! hiccups* — bounded by the consensus round-trip, never by a wall
//! clock.
//!
//! Data is lost only when replication is exhausted: both the primary
//! and the chained secondary of an object are down at failover time.
//! That surfaces as the typed [`FleetError::DataLoss`], mirroring the
//! single-server `ServerError::DataLoss` contract.

use crate::control::{Command, ControlPlane, ControlStats};
use crate::placement::{NodeId, PlacementMap, RouteError};
use mms_exec::{par_map_indexed_min, Parallelism, SeedSequence};
use mms_layout::{BandwidthClass, MediaObject, ObjectId};
use mms_sched::StreamId;
use mms_server::{BuildError, MultimediaServer, RunConfig, Scheme, ServerBuilder, ServerError};
use mms_sim::{poisson, AdmissionPolicy, DataMode, FailureEvent, SessionEngine, StepMode, Zipf};
use mms_telemetry::{event, gauge, Level};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::sync::Mutex;

/// Fleet-wide stream handle (node-local [`StreamId`]s are remapped on
/// failover; this id is stable for the stream's whole life).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FleetStreamId(pub u64);

/// A scriptable fleet-level fault, mirroring the single-server
/// [`FailureEvent`] surface one level up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEvent {
    /// Node `node`'s process dies at `cycle`.
    NodeFail {
        /// Fleet cycle the failure strikes.
        cycle: u64,
        /// Ring index of the failing node.
        node: usize,
    },
    /// Node `node` is repaired at `cycle`; it serves primaries again
    /// once the control plane commits its `NodeUp` decree (the catalog
    /// re-sync).
    NodeRepair {
        /// Fleet cycle the repair completes.
        cycle: u64,
        /// Ring index of the repaired node.
        node: usize,
    },
    /// A disk-level fault inside one node, passed through to that
    /// node's own `inject` surface.
    Disk {
        /// Fleet cycle the event fires.
        cycle: u64,
        /// Ring index of the affected node.
        node: usize,
        /// The intra-node failure event.
        event: FailureEvent,
    },
}

impl FleetEvent {
    /// Node failure at `cycle`.
    pub fn fail_node(cycle: u64, node: usize) -> Self {
        FleetEvent::NodeFail { cycle, node }
    }

    /// Node repair at `cycle`.
    pub fn repair_node(cycle: u64, node: usize) -> Self {
        FleetEvent::NodeRepair { cycle, node }
    }

    /// Intra-node disk event at `cycle`.
    pub fn disk(cycle: u64, node: usize, event: FailureEvent) -> Self {
        FleetEvent::Disk { cycle, node, event }
    }

    /// The fleet cycle this event fires at.
    pub fn cycle(&self) -> u64 {
        match *self {
            FleetEvent::NodeFail { cycle, .. }
            | FleetEvent::NodeRepair { cycle, .. }
            | FleetEvent::Disk { cycle, .. } => cycle,
        }
    }
}

/// Anything a fleet operation can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The router could not place the admission.
    Route(RouteError),
    /// The target node rejected the admission (capacity).
    Admission {
        /// Node that rejected.
        node: usize,
        /// The node-level admission error.
        source: mms_sched::AdmissionError,
    },
    /// A node-level operation failed.
    Node {
        /// Node that failed the operation.
        node: usize,
        /// The underlying server error.
        source: ServerError,
    },
    /// A node could not be constructed.
    Build {
        /// Node that failed to build.
        node: usize,
        /// The underlying build error.
        source: BuildError,
    },
    /// Replication was exhausted during failover: `tracks` data tracks
    /// had no surviving replica. The fleet keeps running degraded —
    /// this is the node-level analogue of the paper's catastrophic
    /// failure.
    DataLoss {
        /// Data tracks lost across all streams that could not move.
        tracks: u64,
    },
    /// The fleet configuration is invalid.
    Config(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Route(e) => write!(f, "routing failed: {e}"),
            FleetError::Admission { node, source } => {
                write!(f, "node {node} rejected admission: {source}")
            }
            FleetError::Node { node, source } => write!(f, "node {node}: {source}"),
            FleetError::Build { node, source } => write!(f, "building node {node}: {source}"),
            FleetError::DataLoss { tracks } => {
                write!(
                    f,
                    "replication exhausted: {tracks} data tracks lost in failover"
                )
            }
            FleetError::Config(msg) => write!(f, "bad fleet configuration: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<RouteError> for FleetError {
    fn from(e: RouteError) -> Self {
        FleetError::Route(e)
    }
}

/// Fleet-level counters, all monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetMetrics {
    /// Streams admitted (to primary or secondary).
    pub admitted: u64,
    /// Admissions rejected by the target node (capacity).
    pub rejected: u64,
    /// Admissions with no live replica to route to.
    pub unavailable: u64,
    /// Admissions that landed on the chained secondary.
    pub re_routed_admissions: u64,
    /// Node processes failed.
    pub node_failures: u64,
    /// Node processes repaired.
    pub node_repairs: u64,
    /// `NodeDown` decrees committed (failover rounds executed).
    pub failovers: u64,
    /// Live streams moved to their secondary during failover.
    pub re_routed_streams: u64,
    /// Streams dropped at failover because the secondary was full.
    pub dropped_on_failover: u64,
    /// Delivery cycles missed by streams waiting for a failover decree
    /// (bounded per stream by the consensus round-trip).
    pub failover_hiccup_cycles: u64,
    /// Largest decree-commit gap any failover waited — the worst-case
    /// per-stream hiccup, bounded by the consensus round-trip.
    pub max_failover_gap: u64,
    /// Data tracks with no surviving replica at failover.
    pub tracks_lost: u64,
    /// Failover rounds that lost data.
    pub data_loss_events: u64,
    /// Streams released (natural end of their hold).
    pub released: u64,
}

/// Aggregate of one [`Fleet::run_with_traffic`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Sessions offered by the arrival process.
    pub offered: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Sessions rejected for capacity.
    pub rejected: u64,
    /// Sessions with no live replica.
    pub unavailable: u64,
    /// Data tracks lost to exhausted replication during the run.
    pub tracks_lost: u64,
}

/// Aggregate of one [`Fleet::run_sharded_sessions`] call (summed over
/// nodes in ring order, so it is bit-identical at any thread count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Sessions offered across all node engines.
    pub offered: u64,
    /// Sessions admitted.
    pub admitted: u64,
    /// Sessions rejected.
    pub rejected: u64,
    /// Viewers that balked.
    pub balked: u64,
    /// Viewers that abandoned early.
    pub released_early: u64,
    /// Data tracks delivered during the run.
    pub delivered: u64,
    /// Delivery hiccups during the run.
    pub hiccups: u64,
}

/// Heavy-traffic configuration for [`Fleet::run_sharded_sessions`].
#[derive(Debug, Clone)]
pub struct ShardedLoad {
    /// Cycles to run each node.
    pub cycles: u64,
    /// Offered load as a fraction of each node's admission capacity.
    pub load: f64,
    /// Zipf skew over each node's shard of the catalog.
    pub theta: f64,
    /// Per-session abandonment probability.
    pub abandon: f64,
    /// VBR hold-multiplier ladder (empty = constant bitrate).
    pub vbr: Vec<f64>,
    /// Per-node admission policy.
    pub policy: AdmissionPolicy,
    /// Base seed; node `i` draws from the `i`-th derived stream.
    pub seed: u64,
}

impl Default for ShardedLoad {
    fn default() -> Self {
        ShardedLoad {
            cycles: 1000,
            load: 0.9,
            theta: 0.271,
            abandon: 0.0,
            vbr: Vec::new(),
            policy: AdmissionPolicy::Reject,
            seed: 1995,
        }
    }
}

/// One fleet node: a whole simulated server plus its process state.
struct Node {
    server: MultimediaServer,
    up: bool,
    failed_at: u64,
}

/// A live fleet-level session.
#[derive(Debug, Clone, Copy)]
struct FleetSession {
    node: usize,
    local: StreamId,
    obj_ix: usize,
    end: u64,
    /// Set between the node's death and the `NodeDown` commit: the
    /// stream has stopped delivering and awaits re-routing.
    limbo: bool,
}

/// Builder for a [`Fleet`]. All nodes share one geometry; the catalog
/// is sharded over them by the [`PlacementMap`].
pub struct FleetBuilder {
    nodes: usize,
    scheme: Scheme,
    disks: usize,
    group: usize,
    data_mode: DataMode,
    movies: usize,
    tracks: u64,
    objects: Vec<MediaObject>,
    step_mode: StepMode,
    par: Parallelism,
    control_seed: u64,
}

impl FleetBuilder {
    /// A fleet of `nodes` Streaming-RAID nodes (10 disks, C = 5,
    /// metadata-only data mode, an 8-movie × 200-track catalog).
    pub fn new(nodes: usize) -> Self {
        FleetBuilder {
            nodes,
            scheme: Scheme::StreamingRaid,
            disks: 10,
            group: 5,
            data_mode: DataMode::MetadataOnly,
            movies: 8,
            tracks: 200,
            objects: Vec::new(),
            step_mode: StepMode::CycleByCycle,
            par: Parallelism::Auto,
            control_seed: 1995,
        }
    }

    /// Parity scheme for every node.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Disks per node.
    pub fn disks(mut self, disks: usize) -> Self {
        self.disks = disks;
        self
    }

    /// Parity-group size per node.
    pub fn parity_group(mut self, c: usize) -> Self {
        self.group = c;
        self
    }

    /// Data mode for every node.
    pub fn data_mode(mut self, mode: DataMode) -> Self {
        self.data_mode = mode;
        self
    }

    /// Generate a uniform catalog of `movies` objects of `tracks`
    /// tracks each (ignored if explicit objects were registered).
    pub fn catalog(mut self, movies: usize, tracks: u64) -> Self {
        self.movies = movies;
        self.tracks = tracks;
        self
    }

    /// Register an explicit media object.
    pub fn object(mut self, object: MediaObject) -> Self {
        self.objects.push(object);
        self
    }

    /// Step mode for every node (`EventHorizon` makes million-session
    /// fleet runs fast; observably identical).
    pub fn step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Worker pool for node fan-outs (output-invariant).
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Seed for the control plane's message-delivery order.
    pub fn control_seed(mut self, seed: u64) -> Self {
        self.control_seed = seed;
        self
    }

    /// Apply a unified [`RunConfig`]: worker pool and step mode.
    pub fn run_config(mut self, cfg: &RunConfig) -> Self {
        self.par = cfg.threads;
        self.step_mode = cfg.step_mode;
        self
    }

    /// Build the fleet: shard the catalog, construct every node with
    /// its primary and chained-replica objects, and start the control
    /// plane with all nodes up.
    pub fn build(self) -> Result<Fleet, FleetError> {
        if self.nodes < 2 {
            return Err(FleetError::Config(
                "a fleet needs at least 2 nodes for chained declustering".into(),
            ));
        }
        let objects = if self.objects.is_empty() {
            (0..self.movies.max(1))
                .map(|m| {
                    MediaObject::new(
                        ObjectId(m as u64),
                        format!("title-{m}"),
                        self.tracks,
                        BandwidthClass::Mpeg1,
                    )
                })
                .collect()
        } else {
            self.objects
        };
        let ids: Vec<ObjectId> = objects.iter().map(|o| o.id).collect();
        let placement = PlacementMap::new(self.nodes, &ids);

        let mut nodes = Vec::with_capacity(self.nodes);
        for n in 0..self.nodes {
            let mut builder = ServerBuilder::new(self.scheme)
                .disks(self.disks)
                .parity_group(self.group)
                .data_mode(self.data_mode)
                .parallelism(Parallelism::Sequential);
            for (id, _role) in placement.placed_on(NodeId(n)) {
                let obj = objects
                    .iter()
                    .find(|o| o.id == id)
                    .expect("placement only places registered objects");
                builder = builder.object(obj.clone());
            }
            let mut server = builder
                .build()
                .map_err(|source| FleetError::Build { node: n, source })?;
            server.set_step_mode(self.step_mode);
            nodes.push(Node {
                server,
                up: true,
                failed_at: 0,
            });
        }

        // All nodes share one geometry, so one node's cycle config
        // prices every object's nominal hold.
        let cfg = *nodes[0].server.cycle_config();
        let nominal = |tracks: u64| tracks.div_ceil(cfg.k as u64) * cfg.read_period() as u64;
        let mut holds = Vec::with_capacity(placement.objects().len());
        let mut tracks = Vec::with_capacity(placement.objects().len());
        for &id in placement.objects() {
            let obj = objects
                .iter()
                .find(|o| o.id == id)
                .expect("placement catalog mirrors registered objects");
            holds.push(nominal(obj.tracks).max(1));
            tracks.push(obj.tracks);
        }

        let n = self.nodes;
        Ok(Fleet {
            nodes,
            placement,
            holds,
            tracks,
            control: ControlPlane::new(n, self.control_seed),
            log_cursor: 0,
            sessions: BTreeMap::new(),
            releases: BinaryHeap::new(),
            queue: Vec::new(),
            cycle: 0,
            next_id: 0,
            eff_up: vec![true; n],
            metrics: FleetMetrics::default(),
            par: self.par,
        })
    }
}

/// A sharded multi-node multimedia service behind one front-end.
pub struct Fleet {
    nodes: Vec<Node>,
    placement: PlacementMap,
    /// Nominal session hold in cycles, per placement index.
    holds: Vec<u64>,
    /// Data tracks, per placement index.
    tracks: Vec<u64>,
    control: ControlPlane,
    log_cursor: usize,
    sessions: BTreeMap<u64, FleetSession>,
    releases: BinaryHeap<Reverse<(u64, u64)>>,
    /// Scheduled events, sorted by cycle descending (pop from the
    /// back), stable for equal cycles.
    queue: Vec<FleetEvent>,
    cycle: u64,
    next_id: u64,
    /// Per-node serving eligibility: process up AND committed catalog
    /// view in sync. This is the slice every route consults.
    eff_up: Vec<bool>,
    metrics: FleetMetrics,
    par: Parallelism,
}

impl Fleet {
    /// Number of nodes in the ring.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current fleet cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The placement map (immutable for the fleet's life).
    pub fn placement(&self) -> &PlacementMap {
        &self.placement
    }

    /// The control plane (committed view, leader, log, stats).
    pub fn control(&self) -> &ControlPlane {
        &self.control
    }

    /// Control-plane counters.
    pub fn control_stats(&self) -> &ControlStats {
        self.control.stats()
    }

    /// Fleet-level counters.
    pub fn metrics(&self) -> &FleetMetrics {
        &self.metrics
    }

    /// Read access to node `n`'s server.
    pub fn node(&self, n: usize) -> &MultimediaServer {
        &self.nodes[n].server
    }

    /// Whether node `n`'s process is up.
    pub fn node_up(&self, n: usize) -> bool {
        self.nodes[n].up
    }

    /// Live fleet sessions (including any in failover limbo).
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The node currently serving a live fleet stream (`None` once the
    /// stream ended, was dropped, or was lost).
    pub fn session_node(&self, id: FleetStreamId) -> Option<NodeId> {
        self.sessions.get(&id.0).map(|s| NodeId(s.node))
    }

    /// Sessions stuck between a node death and its `NodeDown` commit.
    /// Nonzero after the run ends means the control plane lost quorum
    /// and could never agree to move them.
    pub fn stalled_sessions(&self) -> usize {
        self.sessions.values().filter(|s| s.limbo).count()
    }

    /// Route and admit one stream for `object`.
    ///
    /// Routing consults the chained placement and the per-node serving
    /// eligibility (process up AND committed catalog in sync): primary
    /// first, then the chained secondary. No live replica is the typed
    /// [`RouteError::Unavailable`]; a full target node is
    /// [`FleetError::Admission`].
    pub fn admit(&mut self, object: ObjectId) -> Result<FleetStreamId, FleetError> {
        let target = match self.placement.route(object, &self.eff_up) {
            Ok(n) => n,
            Err(e) => {
                if matches!(e, RouteError::Unavailable(_)) {
                    self.metrics.unavailable += 1;
                }
                return Err(e.into());
            }
        };
        let ix = self
            .placement
            .index_of(object)
            .expect("routed objects are always in the catalog");
        let local = match self.nodes[target.0].server.admit(object) {
            Ok(id) => id,
            Err(ServerError::Admission(source)) => {
                self.metrics.rejected += 1;
                return Err(FleetError::Admission {
                    node: target.0,
                    source,
                });
            }
            Err(source) => {
                return Err(FleetError::Node {
                    node: target.0,
                    source,
                })
            }
        };
        let id = self.next_id;
        self.next_id += 1;
        let end = self.cycle + self.holds[ix];
        self.sessions.insert(
            id,
            FleetSession {
                node: target.0,
                local,
                obj_ix: ix,
                end,
                limbo: false,
            },
        );
        self.releases.push(Reverse((end, id)));
        self.metrics.admitted += 1;
        let primary = self
            .placement
            .primary(object)
            .expect("routed objects always have a primary");
        if target != primary {
            self.metrics.re_routed_admissions += 1;
            event!(
                Level::Info,
                "fleet_re_route",
                stream = id,
                object = object.0,
                from = primary.0 as u64,
                to = target.0 as u64,
            );
        }
        event!(
            Level::Debug,
            "fleet_admit",
            stream = id,
            node = target.0 as u64,
            object = object.0,
        );
        Ok(FleetStreamId(id))
    }

    /// Release a fleet stream early (viewer stops watching).
    pub fn release(&mut self, id: FleetStreamId) -> bool {
        let Some(s) = self.sessions.remove(&id.0) else {
            return false;
        };
        if !s.limbo {
            self.nodes[s.node].server.release(s.local);
        }
        self.metrics.released += 1;
        true
    }

    /// Inject a fleet-level event: applied now if due, else queued for
    /// its cycle (mirroring the single-server `inject` contract).
    pub fn inject(&mut self, event: FleetEvent) -> Result<(), FleetError> {
        if event.cycle() <= self.cycle {
            return self.apply_event(event);
        }
        // Keep the queue sorted by cycle descending so due events pop
        // off the back in injection order.
        let pos = self.queue.partition_point(|e| e.cycle() > event.cycle());
        self.queue.insert(pos, event);
        Ok(())
    }

    /// Advance the fleet one cycle: fire due scripted events, tick the
    /// control plane, execute newly committed decrees (failovers),
    /// release finished streams, and step every live node.
    ///
    /// Returns the typed [`FleetError::DataLoss`] when this cycle's
    /// failovers found replication exhausted; the fleet stays usable.
    pub fn step(&mut self) -> Result<(), FleetError> {
        self.fire_due_events()?;
        self.control.tick();
        let lost = self.apply_committed();
        self.release_due();
        self.step_nodes()?;
        self.cycle += 1;
        self.publish_gauges();
        if lost > 0 {
            return Err(FleetError::DataLoss { tracks: lost });
        }
        Ok(())
    }

    /// Run `cycles` steps, stopping at the first error (a data-loss
    /// verdict leaves the fleet usable; callers may resume).
    pub fn run(&mut self, cycles: u64) -> Result<(), FleetError> {
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(())
    }

    /// Drive Zipf/Poisson traffic over the whole fleet for `cycles`
    /// cycles through the front-end router, processing any scripted
    /// events on the way. Data-loss verdicts are absorbed into the
    /// report (the service keeps running degraded, as a real fleet
    /// would).
    pub fn run_with_traffic<R: Rng + ?Sized>(
        &mut self,
        cycles: u64,
        rate: f64,
        theta: f64,
        rng: &mut R,
    ) -> Result<TrafficReport, FleetError> {
        let zipf = Zipf::new(self.placement.objects().len(), theta);
        let mut report = TrafficReport::default();
        for _ in 0..cycles {
            for _ in 0..poisson(rate, rng) {
                let object = self.placement.objects()[zipf.sample(rng)];
                report.offered += 1;
                match self.admit(object) {
                    Ok(_) => report.admitted += 1,
                    Err(FleetError::Admission { .. }) => report.rejected += 1,
                    Err(FleetError::Route(RouteError::Unavailable(_))) => report.unavailable += 1,
                    Err(e) => return Err(e),
                }
            }
            match self.step() {
                Ok(()) => {}
                Err(FleetError::DataLoss { tracks }) => report.tracks_lost += tracks,
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// The million-session path: shard the session workload over the
    /// live nodes and run every node's engine concurrently, each with
    /// its own derived seed and (typically) `StepMode::EventHorizon`.
    ///
    /// Each live node gets a [`SessionEngine`] over its *primary*
    /// shard of the catalog at `load` × its admission capacity; a node
    /// whose left ring neighbor is down also absorbs that neighbor's
    /// shard and offered rate (the chained-declustering failover
    /// load). Results are summed in ring order, so the report is
    /// bit-identical at any thread count.
    pub fn run_sharded_sessions(&mut self, cfg: &ShardedLoad) -> Result<ShardReport, FleetError> {
        let n = self.nodes.len();
        let mean_rate = {
            // Little's law per node: load × capacity concurrent
            // sessions of the catalog's mean hold.
            let cap = self.nodes[0].server.stream_capacity() as f64;
            let mean_hold = self.holds.iter().sum::<u64>() as f64 / self.holds.len() as f64;
            cfg.load * cap / (mean_hold * (1.0 - cfg.abandon / 2.0))
        };

        // Build each live node's engine: its primary shard, plus the
        // dead left neighbor's shard (chained failover traffic).
        let mut engines: Vec<Option<SessionEngine>> = Vec::with_capacity(n);
        for i in 0..n {
            if !self.eff_up[i] {
                engines.push(None);
                continue;
            }
            let left = (i + n - 1) % n;
            let absorb_left = !self.eff_up[left];
            let mut catalog: Vec<(ObjectId, u64)> = Vec::new();
            for (ix, &id) in self.placement.objects().iter().enumerate() {
                let primary = ix % n;
                if primary == i || (absorb_left && primary == left) {
                    catalog.push((id, self.holds[ix]));
                }
            }
            if catalog.is_empty() {
                engines.push(None);
                continue;
            }
            let rate = mean_rate * if absorb_left { 2.0 } else { 1.0 };
            let mut engine = SessionEngine::new(
                catalog,
                cfg.theta,
                mms_sim::ArrivalProcess::poisson(rate),
                cfg.policy,
            )
            .with_abandonment(cfg.abandon);
            if !cfg.vbr.is_empty() {
                engine = engine.with_vbr(cfg.vbr.clone());
            }
            engines.push(Some(engine));
        }

        let seeds = SeedSequence::new(cfg.seed);
        let cycles = cfg.cycles;
        let slots: Vec<Mutex<(&mut Node, Option<SessionEngine>)>> = self
            .nodes
            .iter_mut()
            .zip(engines)
            .map(|(node, engine)| Mutex::new((node, engine)))
            .collect();
        let results: Vec<Result<ShardReport, FleetError>> =
            par_map_indexed_min(self.par, n, 2, |i| {
                let mut guard = slots[i]
                    .lock()
                    .expect("fleet shard mutexes are uncontended and never poisoned");
                let (node, engine) = &mut *guard;
                let Some(engine) = engine.as_mut() else {
                    return Ok(ShardReport::default());
                };
                let pre = node.server.metrics().clone();
                let mut rng = StdRng::seed_from_u64(seeds.seed(i as u64));
                node.server
                    .run_sessions(cycles, engine, &mut rng)
                    .map_err(|source| FleetError::Node { node: i, source })?;
                let s = engine.stats();
                let m = node.server.metrics();
                Ok(ShardReport {
                    offered: s.offered,
                    admitted: s.admitted,
                    rejected: s.rejected,
                    balked: s.balked,
                    released_early: s.released_early,
                    delivered: m.delivered - pre.delivered,
                    hiccups: m.total_hiccups() - pre.total_hiccups(),
                })
            });
        drop(slots);

        let mut total = ShardReport::default();
        for r in results {
            let r = r?;
            total.offered += r.offered;
            total.admitted += r.admitted;
            total.rejected += r.rejected;
            total.balked += r.balked;
            total.released_early += r.released_early;
            total.delivered += r.delivered;
            total.hiccups += r.hiccups;
        }
        // Keep fleet time aligned with the node simulators.
        self.cycle += cycles;
        for _ in 0..cycles.min(64) {
            // Let any in-flight control-plane decrees settle; sharded
            // runs are failure-free so 64 ticks is ample.
            self.control.tick();
        }
        let lost = self.apply_committed();
        debug_assert_eq!(lost, 0, "sharded runs schedule no node failures");
        Ok(total)
    }

    // ---- internals ------------------------------------------------

    /// Pop and apply every queued event due at the current cycle.
    fn fire_due_events(&mut self) -> Result<(), FleetError> {
        while let Some(last) = self.queue.last() {
            if last.cycle() > self.cycle {
                break;
            }
            let event = self
                .queue
                .pop()
                .expect("queue non-empty: just peeked its last element");
            self.apply_event(event)?;
        }
        Ok(())
    }

    fn apply_event(&mut self, event: FleetEvent) -> Result<(), FleetError> {
        match event {
            // lint:allow(transitive-alloc): node failure is a rare event, off the per-cycle path
            FleetEvent::NodeFail { node, .. } => self.fail_node_now(node),
            // lint:allow(transitive-alloc): node repair is a rare event, off the per-cycle path
            FleetEvent::NodeRepair { node, .. } => self.repair_node_now(node),
            FleetEvent::Disk { node, event, .. } => self.nodes[node]
                .server
                .inject(event)
                .map(|_| ())
                .map_err(|source| FleetError::Node { node, source }),
        }
    }

    /// A node process dies right now: stop routing to it, release its
    /// local streams into limbo, and ask the control plane to commit
    /// the failure (the failover itself waits for that decree).
    fn fail_node_now(&mut self, node: usize) -> Result<(), FleetError> {
        if node >= self.nodes.len() {
            return Err(FleetError::Config(format!(
                "no node {node} in a {}-node fleet",
                self.nodes.len()
            )));
        }
        if !self.nodes[node].up {
            return Ok(());
        }
        self.nodes[node].up = false;
        self.nodes[node].failed_at = self.cycle;
        self.eff_up[node] = false;
        self.control.set_replica_up(node, false);
        self.control.submit(Command::NodeDown { node: node as u32 });
        self.metrics.node_failures += 1;
        let mut live = 0u64;
        let mut locals: Vec<StreamId> = Vec::new();
        for s in self.sessions.values_mut() {
            if s.node == node && !s.limbo {
                s.limbo = true;
                locals.push(s.local);
                live += 1;
            }
        }
        // The process is gone and its in-memory stream table with it;
        // drop the dead streams so a later repair restarts it empty.
        for local in locals {
            self.nodes[node].server.release(local);
        }
        event!(
            Level::Warn,
            "fleet_node_fail",
            node = node as u64,
            live_streams = live,
            cycle = self.cycle,
        );
        Ok(())
    }

    /// A node process returns. It serves primaries again only once the
    /// control plane commits its `NodeUp` decree (catalog re-sync).
    fn repair_node_now(&mut self, node: usize) -> Result<(), FleetError> {
        if node >= self.nodes.len() {
            return Err(FleetError::Config(format!(
                "no node {node} in a {}-node fleet",
                self.nodes.len()
            )));
        }
        if self.nodes[node].up {
            return Ok(());
        }
        self.nodes[node].up = true;
        self.control.set_replica_up(node, true);
        self.control.submit(Command::NodeUp { node: node as u32 });
        self.metrics.node_repairs += 1;
        event!(
            Level::Info,
            "fleet_node_repair",
            node = node as u64,
            cycle = self.cycle,
        );
        Ok(())
    }

    /// Execute every decree committed since the last step. Returns the
    /// data tracks lost (0 unless replication was exhausted).
    fn apply_committed(&mut self) -> u64 {
        let mut lost = 0u64;
        while self.log_cursor < self.control.log().len() {
            let cmd = self.control.log()[self.log_cursor];
            self.log_cursor += 1;
            match cmd {
                // lint:allow(transitive-alloc): failover runs once per committed NodeDown decree
                Command::NodeDown { node } => lost += self.failover(node as usize),
                Command::NodeUp { node } => {
                    let node = node as usize;
                    // Catalog replica re-synced: the node may serve
                    // primaries again (if its process is still up).
                    self.eff_up[node] = self.nodes[node].up;
                    event!(
                        Level::Info,
                        "fleet_catalog_repaired",
                        node = node as u64,
                        cycle = self.cycle,
                    );
                }
                Command::Lease { leader, epoch } => {
                    event!(
                        Level::Info,
                        "fleet_leader_elected",
                        leader = u64::from(leader),
                        epoch = u64::from(epoch),
                        cycle = self.cycle,
                    );
                }
            }
        }
        lost
    }

    /// The `NodeDown` decree committed: move every limbo stream of the
    /// dead node to its surviving replica. The cycles spent waiting
    /// for the decree are the stream's failover hiccups.
    fn failover(&mut self, node: usize) -> u64 {
        self.metrics.failovers += 1;
        let gap = self.cycle.saturating_sub(self.nodes[node].failed_at);
        self.metrics.max_failover_gap = self.metrics.max_failover_gap.max(gap);
        let affected: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.node == node && s.limbo)
            .map(|(&id, _)| id)
            .collect();
        let mut lost = 0u64;
        let mut moved = 0u64;
        let mut dropped = 0u64;
        for id in affected {
            let s = self.sessions[&id];
            let object = self.placement.objects()[s.obj_ix];
            let hiccups = gap.min(s.end.saturating_sub(self.nodes[node].failed_at));
            self.metrics.failover_hiccup_cycles += hiccups;
            if s.end <= self.cycle {
                // The viewer's hold expired while the decree was in
                // flight; nothing left to move.
                self.sessions.remove(&id);
                self.metrics.released += 1;
                continue;
            }
            match self.placement.route(object, &self.eff_up) {
                Ok(target) => match self.nodes[target.0].server.admit(object) {
                    Ok(local) => {
                        let entry = self
                            .sessions
                            .get_mut(&id)
                            .expect("session id came from the live map");
                        entry.node = target.0;
                        entry.local = local;
                        entry.limbo = false;
                        moved += 1;
                        self.metrics.re_routed_streams += 1;
                        event!(
                            Level::Info,
                            "fleet_re_route",
                            stream = id,
                            object = object.0,
                            from = node as u64,
                            to = target.0 as u64,
                        );
                    }
                    Err(_) => {
                        // Secondary full: the viewer is dropped, but the
                        // data survives — not a data loss.
                        self.sessions.remove(&id);
                        dropped += 1;
                        self.metrics.dropped_on_failover += 1;
                    }
                },
                Err(_) => {
                    // Replication exhausted: the remainder of this
                    // stream's object has no live copy.
                    let remaining = s.end - self.cycle;
                    let hold = self.holds[s.obj_ix].max(1);
                    let tracks = (self.tracks[s.obj_ix] * remaining / hold).max(1);
                    lost += tracks;
                    self.sessions.remove(&id);
                }
            }
        }
        if lost > 0 {
            self.metrics.tracks_lost += lost;
            self.metrics.data_loss_events += 1;
            event!(
                Level::Error,
                "fleet_data_loss",
                node = node as u64,
                tracks = lost,
                cycle = self.cycle,
            );
        }
        event!(
            Level::Warn,
            "fleet_failover",
            node = node as u64,
            re_routed = moved,
            dropped = dropped,
            gap_cycles = gap,
            cycle = self.cycle,
        );
        lost
    }

    /// Release every session whose hold ended by the current cycle.
    fn release_due(&mut self) {
        while let Some(&Reverse((due, id))) = self.releases.peek() {
            if due > self.cycle {
                break;
            }
            self.releases.pop();
            let Some(s) = self.sessions.get(&id) else {
                continue; // already failed over and dropped, or released
            };
            if s.limbo {
                // Not being served: the viewer is frozen awaiting the
                // failover decree. Resolution happens when the decree
                // commits — or never, if quorum is lost, which is what
                // `stalled_sessions` reports.
                continue;
            }
            let s = self
                .sessions
                .remove(&id)
                .expect("session id was just found in the live map");
            self.nodes[s.node].server.release(s.local);
            self.metrics.released += 1;
        }
    }

    /// Step every live node's simulator one cycle.
    fn step_nodes(&mut self) -> Result<(), FleetError> {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if !node.up {
                continue;
            }
            node.server
                .step()
                .map(|_| ())
                .map_err(|source| FleetError::Node { node: i, source })?;
        }
        Ok(())
    }

    /// Mean time to data loss of this fleet's geometry under the
    /// paper's disk reliability figures — see [`fleet_mttf`].
    pub fn mttf<R: Rng + ?Sized>(
        &self,
        rel: mms_disk::ReliabilityParams,
        rng: &mut R,
        trials: usize,
        par: Parallelism,
    ) -> mms_reliability::TrialStats {
        fleet_mttf(self.nodes.len(), rel, rng, trials, par)
    }

    fn publish_gauges(&self) {
        gauge!(
            "fleet.nodes_up",
            self.nodes.iter().filter(|n| n.up).count() as f64
        );
        gauge!("fleet.streams_active", self.sessions.len() as f64);
        gauge!("fleet.epoch", f64::from(self.control.epoch()));
        gauge!("fleet.decrees", self.control.stats().decrees as f64);
    }
}

/// Fleet-level mean time to data loss under chained declustering.
///
/// A fleet of `nodes` nodes loses data exactly when a node and its
/// right ring neighbor are down concurrently — every object placed
/// primarily on the first has its only replica on the second. On the
/// Monte-Carlo harness that is precisely
/// [`CatastropheRule::SameOrAdjacentCluster`](mms_reliability::CatastropheRule::SameOrAdjacentCluster)
/// with `c = 2` over
/// `d = nodes` units (1-wide clusters on a ring): the same estimator
/// the paper's disk-level analysis uses, lifted one level up.
pub fn fleet_mttf<R: Rng + ?Sized>(
    nodes: usize,
    rel: mms_disk::ReliabilityParams,
    rng: &mut R,
    trials: usize,
    par: Parallelism,
) -> mms_reliability::TrialStats {
    let mc = mms_reliability::MonteCarlo {
        d: nodes,
        rel,
        rule: mms_reliability::CatastropheRule::SameOrAdjacentCluster { c: 2 },
    };
    mc.run_par(rng, trials, par)
}

/// Fleet-level mean time to *degradation of service*: the control
/// plane needs a majority of replicas up to commit decrees, so it can
/// mask at most `⌈N/2⌉ − 1` concurrent node failures — one more and
/// failover/repair/election decrees stall. That is
/// [`CatastropheRule::AnyConcurrent`](mms_reliability::CatastropheRule::AnyConcurrent)
/// with `k` at the quorum
/// complement (`AnyConcurrent` masks `k` and is terminal at `k + 1`).
pub fn fleet_mttds<R: Rng + ?Sized>(
    nodes: usize,
    rel: mms_disk::ReliabilityParams,
    rng: &mut R,
    trials: usize,
    par: Parallelism,
) -> mms_reliability::TrialStats {
    let mc = mms_reliability::MonteCarlo {
        d: nodes,
        rel,
        rule: mms_reliability::CatastropheRule::AnyConcurrent {
            k: nodes.div_ceil(2) - 1,
        },
    };
    mc.run_par(rng, trials, par)
}
