//! The fleet's deterministic replicated control plane.
//!
//! Catalog liveness (which nodes are up, who holds the leader lease)
//! is replicated with **single-decree Paxos**: one proposer (the
//! current leader) drives each log slot through a Prepare/Promise then
//! Accept/Accepted round against all replica acceptors, and a command
//! is *chosen* once a majority accepts it. Leader death triggers a
//! re-election — the lease shifts one node to the right on the ring,
//! echoing the data plane's chained declustering — and the new leader
//! seals it with a `Lease` decree.
//!
//! **Why no wall clocks and no hash maps.** The whole workspace
//! promises bit-identical output for any thread count and host, so the
//! consensus module cannot consult `Instant`/`SystemTime` (delivery
//! would depend on machine speed) or iterate a `HashMap` (order is
//! randomized per process). Instead, *simulated* time advances one
//! [`ControlPlane::tick`] per fleet cycle, message delays are drawn
//! from a seeded [`SplitMix64`], and the in-flight network is a binary
//! heap ordered by `(due_tick, send_seq)` — a total order that is a
//! pure function of the seed. Every run of the same scripted scenario
//! elects the same leaders, chooses the same decrees, in the same
//! cycles.

use mms_sim::SplitMix64;
use rand::RngCore;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

/// Ticks a proposal may stall before the proposer retries with a
/// higher ballot.
const RETRY_AFTER: u64 = 10;
/// Message delays are `1..=MAX_DELAY` ticks, drawn per send.
const MAX_DELAY: u64 = 3;
/// Ballots pack the proposer id into the low bits; fleets are far
/// smaller than this.
const BALLOT_NODE_BITS: u32 = 8;

/// A Paxos ballot: totally ordered, unique per proposer.
///
/// Encoded as `round << 8 | proposer`, so two proposers can never
/// issue the same ballot and a higher round always wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Ballot(u64);

impl Ballot {
    fn new(round: u32, node: usize) -> Self {
        Ballot((u64::from(round) << BALLOT_NODE_BITS) | node as u64)
    }
}

/// A command replicated through the control plane's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Node `node` is down: stop routing primaries to it and fail its
    /// live streams over to their chained secondaries.
    NodeDown {
        /// Ring index of the failed node.
        node: u32,
    },
    /// Node `node` is repaired and its catalog replica re-synced:
    /// resume routing its primaries to it.
    NodeUp {
        /// Ring index of the repaired node.
        node: u32,
    },
    /// The leader lease moved to `leader` (sealed by each election).
    Lease {
        /// Ring index of the new leader.
        leader: u32,
        /// Election epoch, monotonically increasing.
        epoch: u32,
    },
}

#[derive(Debug, Clone, Copy)]
enum Payload {
    Prepare {
        ballot: Ballot,
    },
    Promise {
        ballot: Ballot,
        accepted: Option<(Ballot, Command)>,
    },
    Accept {
        ballot: Ballot,
        cmd: Command,
    },
    Accepted {
        ballot: Ballot,
    },
    Nack {
        promised: Ballot,
    },
}

/// One in-flight message. Heap order is `(due, seq)` — `seq` is the
/// global send counter, so delivery order is a total order independent
/// of anything but the seed.
#[derive(Debug, Clone, Copy)]
struct Packet {
    due: u64,
    seq: u64,
    to: u32,
    slot: u32,
    payload: Payload,
}

impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for Packet {}
impl PartialOrd for Packet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Packet {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Durable acceptor state for one log slot.
#[derive(Debug, Clone, Copy, Default)]
struct SlotState {
    promised: Ballot,
    accepted: Option<(Ballot, Command)>,
}

/// One replica: a liveness flag plus its acceptor slots. Acceptor
/// state survives a crash (it is "on disk"), which is what makes
/// repair safe in Paxos.
#[derive(Debug, Clone, Default)]
struct Replica {
    up: bool,
    slots: Vec<SlotState>,
}

impl Replica {
    fn slot(&mut self, slot: usize) -> &mut SlotState {
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, SlotState::default());
        }
        &mut self.slots[slot]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Preparing,
    Accepting,
}

/// The single in-flight proposal (classic single-proposer Paxos; the
/// leader drives one slot at a time).
#[derive(Debug, Clone, Copy)]
struct Proposal {
    slot: usize,
    ballot: Ballot,
    /// The command the leader wants; a previously accepted value can
    /// displace it (it is then re-queued).
    cmd: Command,
    phase: Phase,
    votes: u32,
    adopted: Option<(Ballot, Command)>,
    started: u64,
}

/// Counters the scenario corpus and `mms-ctl fleet` report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Decrees chosen (committed log length).
    pub decrees: u64,
    /// Leader elections performed.
    pub elections: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Proposals retried after a stall or a Nack.
    pub retries: u64,
}

/// The deterministic consensus module: N replicas, a seeded simulated
/// network, and a committed command log.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    replicas: Vec<Replica>,
    net: BinaryHeap<Reverse<Packet>>,
    now: u64,
    seq: u64,
    rng: SplitMix64,
    leader: usize,
    epoch: u32,
    round: u32,
    pending: VecDeque<Command>,
    inflight: Option<Proposal>,
    log: Vec<Command>,
    view: Vec<bool>,
    stats: ControlStats,
}

impl ControlPlane {
    /// A control plane over `nodes` replicas, all up, node 0 holding
    /// the initial lease. All nondeterminism comes from `seed`.
    ///
    /// # Panics
    /// Panics if `nodes` is 0 or does not fit the ballot encoding.
    pub fn new(nodes: usize, seed: u64) -> Self {
        assert!(
            (1..1 << BALLOT_NODE_BITS).contains(&nodes),
            "control plane needs 1..=255 replicas for the ballot encoding"
        );
        ControlPlane {
            replicas: vec![
                Replica {
                    up: true,
                    slots: Vec::new()
                };
                nodes
            ],
            net: BinaryHeap::with_capacity(nodes * 4),
            now: 0,
            seq: 0,
            rng: SplitMix64::new(seed),
            leader: 0,
            epoch: 0,
            round: 0,
            pending: VecDeque::new(),
            inflight: None,
            log: Vec::new(),
            view: vec![true; nodes],
            stats: ControlStats::default(),
        }
    }

    /// The committed liveness view — what admission routing consults.
    pub fn view(&self) -> &[bool] {
        &self.view
    }

    /// Current lease holder (may be ahead of the committed `Lease`
    /// decree while an election is in flight).
    pub fn leader(&self) -> usize {
        self.leader
    }

    /// Current election epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The committed command log, in decree order.
    pub fn log(&self) -> &[Command] {
        &self.log
    }

    /// Counters for reporting.
    pub fn stats(&self) -> &ControlStats {
        &self.stats
    }

    /// Majority size over all replicas (up or not).
    pub fn quorum(&self) -> usize {
        self.replicas.len() / 2 + 1
    }

    /// Whether enough replicas are up for decrees to commit.
    pub fn has_quorum(&self) -> bool {
        self.replicas.iter().filter(|r| r.up).count() >= self.quorum()
    }

    /// Mark a replica process dead or alive. Acceptor state persists
    /// across a crash (durable), as Paxos requires.
    pub fn set_replica_up(&mut self, node: usize, up: bool) {
        if let Some(r) = self.replicas.get_mut(node) {
            r.up = up;
        }
    }

    /// Queue a command for replication. It commits (appears in
    /// [`ControlPlane::log`]) some ticks later, once a majority
    /// accepts its decree — never within the same tick.
    pub fn submit(&mut self, cmd: Command) {
        self.pending.push_back(cmd);
    }

    /// Advance simulated time one tick: elect if the leader is dead,
    /// retry stalled proposals, start the next pending decree, and
    /// deliver every message due this tick in `(due, seq)` order.
    ///
    /// This is the per-cycle consensus hot path: it moves `Copy`
    /// packets between pre-sized structures and never allocates on the
    /// steady path.
    pub fn tick(&mut self) {
        self.now += 1;
        self.maybe_elect();
        self.maybe_retry();
        self.maybe_start();
        while let Some(&Reverse(head)) = self.net.peek() {
            if head.due > self.now {
                break;
            }
            let Some(Reverse(pkt)) = self.net.pop() else {
                break;
            };
            self.stats.messages += 1;
            self.deliver(pkt);
        }
    }

    /// If the lease holder's process is down, shift the lease one node
    /// right (skipping dead nodes) and seal it with a `Lease` decree.
    fn maybe_elect(&mut self) {
        if self.replicas[self.leader].up || !self.replicas.iter().any(|r| r.up) {
            return;
        }
        let n = self.replicas.len();
        let mut next = (self.leader + 1) % n;
        while !self.replicas[next].up {
            next = (next + 1) % n;
        }
        // Abandon the dead leader's in-flight decree; its command goes
        // back on the queue and the new leader re-proposes it.
        if let Some(p) = self.inflight.take() {
            self.pending.push_front(p.cmd);
        }
        self.leader = next;
        self.epoch += 1;
        self.round += 1;
        self.stats.elections += 1;
        self.pending.push_front(Command::Lease {
            leader: next as u32,
            epoch: self.epoch,
        });
    }

    /// Retry a stalled proposal with a higher ballot.
    fn maybe_retry(&mut self) {
        let Some(p) = self.inflight.as_ref() else {
            return;
        };
        if self.now.saturating_sub(p.started) <= RETRY_AFTER {
            return;
        }
        let cmd = p.cmd;
        let slot = p.slot;
        self.round += 1;
        self.stats.retries += 1;
        self.start_proposal(slot, cmd);
    }

    /// Start the next pending decree if the proposer is idle.
    fn maybe_start(&mut self) {
        if self.inflight.is_some() || !self.replicas[self.leader].up {
            return;
        }
        let Some(cmd) = self.pending.pop_front() else {
            return;
        };
        let slot = self.log.len();
        self.start_proposal(slot, cmd);
    }

    fn start_proposal(&mut self, slot: usize, cmd: Command) {
        let ballot = Ballot::new(self.round, self.leader);
        self.inflight = Some(Proposal {
            slot,
            ballot,
            cmd,
            phase: Phase::Preparing,
            votes: 0,
            adopted: None,
            started: self.now,
        });
        self.broadcast(slot, Payload::Prepare { ballot });
    }

    fn broadcast(&mut self, slot: usize, payload: Payload) {
        for to in 0..self.replicas.len() {
            self.send(to, slot, payload);
        }
    }

    fn send(&mut self, to: usize, slot: usize, payload: Payload) {
        let delay = 1 + self.rng.next_u64() % MAX_DELAY;
        self.seq += 1;
        self.net.push(Reverse(Packet {
            due: self.now + delay,
            seq: self.seq,
            to: to as u32,
            slot: slot as u32,
            payload,
        }));
    }

    fn deliver(&mut self, pkt: Packet) {
        let slot = pkt.slot as usize;
        match pkt.payload {
            // Acceptor side: dropped silently if the process is down.
            Payload::Prepare { ballot } => {
                let to = pkt.to as usize;
                if !self.replicas[to].up {
                    return;
                }
                let state = self.replicas[to].slot(slot);
                let reply = if ballot > state.promised {
                    state.promised = ballot;
                    Payload::Promise {
                        ballot,
                        accepted: state.accepted,
                    }
                } else {
                    Payload::Nack {
                        promised: state.promised,
                    }
                };
                let leader = self.leader;
                self.send(leader, slot, reply);
            }
            Payload::Accept { ballot, cmd } => {
                let to = pkt.to as usize;
                if !self.replicas[to].up {
                    return;
                }
                let state = self.replicas[to].slot(slot);
                let reply = if ballot >= state.promised {
                    state.promised = ballot;
                    state.accepted = Some((ballot, cmd));
                    Payload::Accepted { ballot }
                } else {
                    Payload::Nack {
                        promised: state.promised,
                    }
                };
                let leader = self.leader;
                self.send(leader, slot, reply);
            }
            // Proposer side: stale replies (old ballot, old leader, or
            // an already-decided slot) fall through harmlessly.
            Payload::Promise { ballot, accepted } => {
                if pkt.to as usize != self.leader {
                    return;
                }
                let quorum = self.quorum() as u32;
                let Some(p) = self.inflight.as_mut() else {
                    return;
                };
                if p.slot != slot || p.ballot != ballot || p.phase != Phase::Preparing {
                    return;
                }
                if let Some((b, _)) = accepted {
                    if p.adopted.is_none_or(|(prev, _)| b > prev) {
                        p.adopted = accepted;
                    }
                }
                p.votes += 1;
                if p.votes >= quorum {
                    p.phase = Phase::Accepting;
                    p.votes = 0;
                    let value = p.adopted.map_or(p.cmd, |(_, c)| c);
                    let ballot = p.ballot;
                    self.broadcast(slot, Payload::Accept { ballot, cmd: value });
                }
            }
            Payload::Accepted { ballot } => {
                if pkt.to as usize != self.leader {
                    return;
                }
                let quorum = self.quorum() as u32;
                let Some(p) = self.inflight.as_mut() else {
                    return;
                };
                if p.slot != slot || p.ballot != ballot || p.phase != Phase::Accepting {
                    return;
                }
                p.votes += 1;
                if p.votes >= quorum {
                    let chosen = p.adopted.map_or(p.cmd, |(_, c)| c);
                    let wanted = p.cmd;
                    self.inflight = None;
                    self.choose(slot, chosen);
                    if chosen != wanted {
                        // A recovered value won the slot; the leader's
                        // own command runs in the next decree.
                        self.pending.push_front(wanted);
                    }
                }
            }
            Payload::Nack { promised } => {
                if pkt.to as usize != self.leader {
                    return;
                }
                let Some(p) = self.inflight.as_ref() else {
                    return;
                };
                if p.slot != slot || promised <= p.ballot {
                    return;
                }
                // Outbid: raise the round past the competing ballot and
                // restart the slot.
                let cmd = p.cmd;
                self.round = self.round.max((promised.0 >> BALLOT_NODE_BITS) as u32) + 1;
                self.stats.retries += 1;
                self.start_proposal(slot, cmd);
            }
        }
    }

    /// A value is chosen for `slot`: append it to the committed log
    /// (slots are driven strictly in order, so `slot == log.len()`)
    /// and apply it to the liveness view.
    fn choose(&mut self, slot: usize, cmd: Command) {
        debug_assert_eq!(slot, self.log.len(), "decrees are driven in log order");
        self.log.push(cmd);
        self.stats.decrees += 1;
        match cmd {
            Command::NodeDown { node } => {
                if let Some(v) = self.view.get_mut(node as usize) {
                    *v = false;
                }
            }
            Command::NodeUp { node } => {
                if let Some(v) = self.view.get_mut(node as usize) {
                    *v = true;
                }
            }
            Command::Lease { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run ticks until the log reaches `len` decrees (or panic — the
    /// bound is generous against the retry/delay constants).
    fn settle(cp: &mut ControlPlane, len: usize) -> u64 {
        let start = cp.now;
        for _ in 0..200 {
            if cp.log().len() >= len {
                return cp.now - start;
            }
            cp.tick();
        }
        panic!(
            "log stalled at {} < {} decrees after 200 ticks",
            cp.log().len(),
            len
        );
    }

    #[test]
    fn decree_commits_within_bounded_ticks() {
        let mut cp = ControlPlane::new(4, 7);
        cp.submit(Command::NodeDown { node: 2 });
        let ticks = settle(&mut cp, 1);
        assert_eq!(cp.log(), &[Command::NodeDown { node: 2 }]);
        assert!(!cp.view()[2]);
        assert!(
            ticks <= 2 * (2 * MAX_DELAY + RETRY_AFTER),
            "commit took {ticks} ticks"
        );
    }

    #[test]
    fn same_seed_same_trace() {
        let run = |seed| {
            let mut cp = ControlPlane::new(5, seed);
            cp.submit(Command::NodeDown { node: 1 });
            cp.set_replica_up(1, false);
            for _ in 0..40 {
                cp.tick();
            }
            cp.submit(Command::NodeUp { node: 1 });
            cp.set_replica_up(1, true);
            for _ in 0..40 {
                cp.tick();
            }
            (cp.log().to_vec(), *cp.stats(), cp.leader(), cp.epoch())
        };
        assert_eq!(run(42), run(42));
        // Different seed: same decrees, possibly different timings.
        assert_eq!(run(42).0, run(43).0);
    }

    #[test]
    fn leader_death_elects_right_neighbor_and_seals_lease() {
        let mut cp = ControlPlane::new(4, 11);
        cp.set_replica_up(0, false);
        cp.submit(Command::NodeDown { node: 0 });
        settle(&mut cp, 2);
        assert_eq!(cp.leader(), 1, "lease shifts one right past the dead node");
        assert_eq!(cp.epoch(), 1);
        assert_eq!(cp.stats().elections, 1);
        assert_eq!(
            cp.log()[0],
            Command::Lease {
                leader: 1,
                epoch: 1
            },
            "the election is sealed before the failure decree"
        );
        assert_eq!(cp.log()[1], Command::NodeDown { node: 0 });
    }

    #[test]
    fn minority_down_still_commits_majority_down_stalls() {
        let mut cp = ControlPlane::new(5, 3);
        cp.set_replica_up(3, false);
        cp.set_replica_up(4, false);
        assert!(cp.has_quorum());
        cp.submit(Command::NodeDown { node: 3 });
        settle(&mut cp, 1);

        let mut stalled = ControlPlane::new(4, 3);
        stalled.set_replica_up(1, false);
        stalled.set_replica_up(2, false);
        stalled.set_replica_up(3, false);
        assert!(!stalled.has_quorum());
        stalled.submit(Command::NodeDown { node: 1 });
        for _ in 0..120 {
            stalled.tick();
        }
        assert!(stalled.log().is_empty(), "no quorum, no decree");
    }

    #[test]
    fn crashed_acceptor_state_survives_repair() {
        // Choose a decree, crash a follower, choose more, repair it:
        // the log stays consistent (acceptor state is durable).
        let mut cp = ControlPlane::new(3, 9);
        cp.submit(Command::NodeDown { node: 2 });
        cp.set_replica_up(2, false);
        settle(&mut cp, 1);
        cp.set_replica_up(2, true);
        cp.submit(Command::NodeUp { node: 2 });
        settle(&mut cp, 2);
        assert_eq!(
            cp.log(),
            &[Command::NodeDown { node: 2 }, Command::NodeUp { node: 2 }]
        );
        assert!(cp.view()[2]);
    }
}
