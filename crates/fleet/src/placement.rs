//! Chained-declustered catalog placement across fleet nodes.
//!
//! The paper's Improved Bandwidth scheme survives a disk failure by
//! shifting the failed disk's load "one to the right" inside a server
//! (Section 4.4). The fleet tier lifts the same trick one level up:
//! every object has a *primary* node and a *secondary* replica on the
//! next node around the ring, so a whole-node failure re-routes its
//! load to exactly one neighbor — the node-level analogue of the IB
//! shift, known in the distributed-database literature as chained
//! declustering.
//!
//! Placement is a pure function of the sorted object list and the node
//! count: object `i` (in `ObjectId` order) is primary on node
//! `i mod N` and secondary on node `(i mod N + 1) mod N`. No state is
//! replicated to *compute* a route; what the control plane replicates
//! is the *liveness view* the route consults (see
//! [`crate::control::ControlPlane`]).

use mms_layout::ObjectId;
use std::fmt;

/// Index of a node in the fleet ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Which copy of an object a node holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The node serves this object in normal operation.
    Primary,
    /// The node holds the chained replica and serves it only while the
    /// primary node is down.
    Secondary,
}

/// Why a route could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The object is not in the fleet catalog.
    UnknownObject(ObjectId),
    /// Both the primary and the secondary replica are down.
    Unavailable(ObjectId),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::UnknownObject(o) => write!(f, "object {o:?} not in fleet catalog"),
            RouteError::Unavailable(o) => {
                write!(f, "object {o:?} unavailable: both replicas down")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The deterministic chained-declustered placement of a catalog over
/// `N` nodes.
///
/// The map is immutable after construction: node failures change the
/// *liveness view* passed to [`PlacementMap::route`], never the
/// placement itself, which is what makes re-routing under failure a
/// pure deterministic function.
#[derive(Debug, Clone)]
pub struct PlacementMap {
    nodes: usize,
    /// The catalog, sorted ascending; the index in this list is the
    /// object's placement index.
    objects: Vec<ObjectId>,
}

impl PlacementMap {
    /// Place `objects` over `nodes` nodes (sorted and deduplicated, so
    /// the placement is independent of registration order).
    ///
    /// # Panics
    /// Panics if `nodes < 2`: chained declustering needs a distinct
    /// neighbor to hold the replica.
    pub fn new(nodes: usize, objects: &[ObjectId]) -> Self {
        assert!(
            nodes >= 2,
            "chained declustering needs at least 2 nodes for a distinct replica"
        );
        let mut objects = objects.to_vec();
        objects.sort_unstable();
        objects.dedup();
        PlacementMap { nodes, objects }
    }

    /// Number of nodes in the ring.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The sorted catalog this map places.
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// Placement index of `object`, if it is in the catalog.
    pub fn index_of(&self, object: ObjectId) -> Option<usize> {
        self.objects.binary_search(&object).ok()
    }

    /// The node that serves `object` in normal operation.
    pub fn primary(&self, object: ObjectId) -> Option<NodeId> {
        self.index_of(object).map(|i| NodeId(i % self.nodes))
    }

    /// The node holding the chained replica: one step right on the
    /// ring from the primary — the node-level IB shift.
    pub fn secondary(&self, object: ObjectId) -> Option<NodeId> {
        self.index_of(object)
            .map(|i| NodeId((i % self.nodes + 1) % self.nodes))
    }

    /// Route an admission for `object` given the liveness view `up`
    /// (indexed by node): the primary if it is up, else the chained
    /// secondary, else [`RouteError::Unavailable`].
    ///
    /// This is the fleet's per-admission hot path; it is pure
    /// arithmetic plus one binary search, with no allocation.
    pub fn route(&self, object: ObjectId, up: &[bool]) -> Result<NodeId, RouteError> {
        let Some(index) = self.index_of(object) else {
            return Err(RouteError::UnknownObject(object));
        };
        let primary = index % self.nodes;
        if up.get(primary).copied().unwrap_or(false) {
            return Ok(NodeId(primary));
        }
        let secondary = (primary + 1) % self.nodes;
        if up.get(secondary).copied().unwrap_or(false) {
            return Ok(NodeId(secondary));
        }
        Err(RouteError::Unavailable(object))
    }

    /// Every object stored on `node`, with the role the node plays for
    /// it — the node's on-disk catalog (primaries plus chained
    /// replicas of the left neighbor's primaries).
    pub fn placed_on(&self, node: NodeId) -> impl Iterator<Item = (ObjectId, Role)> + '_ {
        let nodes = self.nodes;
        self.objects.iter().enumerate().filter_map(move |(i, &o)| {
            let primary = i % nodes;
            if primary == node.0 {
                Some((o, Role::Primary))
            } else if (primary + 1) % nodes == node.0 {
                Some((o, Role::Secondary))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<ObjectId> {
        (0..n).map(ObjectId).collect()
    }

    #[test]
    fn placement_is_round_robin_with_chained_replica() {
        let map = PlacementMap::new(4, &ids(8));
        for i in 0..8u64 {
            let p = map.primary(ObjectId(i)).unwrap();
            let s = map.secondary(ObjectId(i)).unwrap();
            assert_eq!(p.0, (i % 4) as usize);
            assert_eq!(s.0, (p.0 + 1) % 4);
        }
    }

    #[test]
    fn placement_ignores_registration_order() {
        let mut shuffled = ids(9);
        shuffled.reverse();
        let a = PlacementMap::new(3, &ids(9));
        let b = PlacementMap::new(3, &shuffled);
        for o in ids(9) {
            assert_eq!(a.primary(o), b.primary(o));
        }
    }

    #[test]
    fn route_shifts_one_right_under_single_failure() {
        let map = PlacementMap::new(4, &ids(12));
        let mut up = [true; 4];
        up[2] = false;
        for o in ids(12) {
            let routed = map.route(o, &up).unwrap();
            let p = map.primary(o).unwrap();
            if p.0 == 2 {
                // The IB invariant one level up: failed node's load
                // lands on exactly its right neighbor.
                assert_eq!(routed.0, 3);
            } else {
                assert_eq!(routed, p);
            }
        }
    }

    #[test]
    fn route_fails_typed_when_both_replicas_down() {
        let map = PlacementMap::new(3, &ids(3));
        let up = [false, false, true];
        // Object 0: primary node0, secondary node1 — both down.
        assert_eq!(
            map.route(ObjectId(0), &up),
            Err(RouteError::Unavailable(ObjectId(0)))
        );
        // Object 2: primary node2 is up.
        assert_eq!(map.route(ObjectId(2), &up), Ok(NodeId(2)));
    }

    #[test]
    fn placed_on_covers_each_object_exactly_twice() {
        let map = PlacementMap::new(5, &ids(17));
        let mut copies = [0usize; 17];
        for n in 0..5 {
            for (o, _) in map.placed_on(NodeId(n)) {
                copies[o.0 as usize] += 1;
            }
        }
        assert!(copies.iter().all(|&c| c == 2), "replication factor is 2");
    }
}
