//! # mms-exec — deterministic parallel execution
//!
//! The Monte-Carlo reliability trials, the design-space sweep, and the
//! ablation scenario grids are all embarrassingly parallel: independent
//! jobs whose results are combined by index. This crate gives them one
//! shared worker pool built on [`std::thread::scope`] (the
//! standard-library equivalent of crossbeam's scoped threads — no
//! external dependency needed) with two guarantees:
//!
//! 1. **Results are index-ordered.** [`par_map_indexed`] returns
//!    `out[i] = f(i)` regardless of which worker computed which index or
//!    in what order they finished — the output is a pure function of the
//!    input, never of scheduling.
//! 2. **Randomness is pre-split.** [`SeedSequence`] derives one
//!    independent SplitMix64-mixed seed per job index from a single base
//!    seed drawn from the caller's RNG. A job's random stream depends
//!    only on `(base, index)`, so stochastic workloads are bit-identical
//!    at 1, 2, or 64 threads.
//!
//! Together these make "how many threads?" a pure performance knob
//! ([`Parallelism`]) that can never change a result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;
use std::fmt;
use std::num::NonZeroUsize;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads an operation may use.
///
/// Purely a performance knob: every consumer in this workspace is
/// required to produce bit-identical results for any variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread, spawning nothing.
    Sequential,
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]; falls back to 1 if the
    /// platform cannot say).
    #[default]
    Auto,
    /// Exactly this many workers.
    Threads(NonZeroUsize),
}

impl Parallelism {
    /// A fixed thread count; `n = 0` is treated as [`Parallelism::Auto`].
    #[must_use]
    pub fn threads(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) => Parallelism::Threads(n),
            None => Parallelism::Auto,
        }
    }

    /// The number of workers this setting resolves to right now.
    #[must_use]
    pub fn thread_count(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Threads(n) => n.get(),
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Sequential => write!(f, "seq"),
            Parallelism::Auto => write!(f, "auto"),
            Parallelism::Threads(n) => write!(f, "{n}"),
        }
    }
}

/// Error from parsing a [`Parallelism`] out of a CLI flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseParallelismError(String);

impl fmt::Display for ParseParallelismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid thread count {:?}: expected a positive integer, \"auto\", or \"seq\"",
            self.0
        )
    }
}

impl std::error::Error for ParseParallelismError {}

impl FromStr for Parallelism {
    type Err = ParseParallelismError;

    /// `"seq"`/`"sequential"` → [`Sequential`](Parallelism::Sequential),
    /// `"auto"`/`"0"` → [`Auto`](Parallelism::Auto), a positive integer
    /// → [`Threads`](Parallelism::Threads).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "seq" | "sequential" => Ok(Parallelism::Sequential),
            "auto" | "0" => Ok(Parallelism::Auto),
            t => t
                .parse::<usize>()
                .map(Parallelism::threads)
                .map_err(|_| ParseParallelismError(s.to_string())),
        }
    }
}

/// Map `f` over `0..n`, returning `vec![f(0), f(1), …, f(n-1)]`.
///
/// Workers claim indices from a shared atomic counter (dynamic
/// load-balancing — long jobs don't stall a fixed chunk) and stash
/// `(index, value)` pairs locally; results are slotted by index after
/// the scope joins, so the output order is deterministic no matter how
/// the indices were interleaved. A panic in any job propagates to the
/// caller.
pub fn par_map_indexed<T, F>(par: Parallelism, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = par.thread_count().min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, f(i)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for mine in per_worker {
        for (i, value) in mine {
            debug_assert!(slots[i].is_none(), "index {i} claimed twice");
            slots[i] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Map `f` over a slice, preserving order: `out[i] = f(&items[i])`.
pub fn par_map<I, T, F>(par: Parallelism, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_indexed(par, items.len(), |i| f(&items[i]))
}

/// A splittable stream of per-job seeds.
///
/// One base seed is drawn from the caller's RNG (advancing it exactly
/// once, so the caller's subsequent draws are also reproducible); each
/// job `i` then gets `seed(i)`, a SplitMix64 mix of the base and the
/// index stepped by the golden-ratio increment. Jobs seeded this way are
/// statistically independent and — crucially — independent of which
/// thread runs them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    base: u64,
}

/// SplitMix64's golden-ratio stream increment.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SeedSequence {
    /// A sequence rooted at an explicit base seed.
    #[must_use]
    pub fn new(base: u64) -> Self {
        SeedSequence { base }
    }

    /// Draw the base seed from `rng` (one `u64`, exactly once).
    pub fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        SeedSequence::new(rng.gen::<u64>())
    }

    /// The seed for job `index`.
    #[must_use]
    pub fn seed(&self, index: u64) -> u64 {
        rand::splitmix64_mix(
            self.base
                .wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn results_are_index_ordered_at_any_thread_count() {
        let n = 403;
        let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
        for par in [
            Parallelism::Sequential,
            Parallelism::threads(2),
            Parallelism::threads(3),
            Parallelism::threads(8),
            Parallelism::Auto,
        ] {
            let got = par_map_indexed(par, n, |i| i * i);
            assert_eq!(got, expect, "mismatch under {par}");
        }
    }

    #[test]
    fn par_map_preserves_slice_order() {
        let items: Vec<i64> = (0..97).map(|i| i * 3 - 40).collect();
        let got = par_map(Parallelism::threads(4), &items, |x| x + 1);
        let expect: Vec<i64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = par_map_indexed(Parallelism::threads(8), 0, |_| 0u8);
        assert!(empty.is_empty());
        assert_eq!(par_map_indexed(Parallelism::threads(8), 1, |i| i), vec![0]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let got = par_map_indexed(Parallelism::threads(64), 3, |i| i * 10);
        assert_eq!(got, vec![0, 10, 20]);
    }

    #[test]
    fn seed_sequence_is_deterministic_and_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = SeedSequence::from_rng(&mut rng);
        let mut rng2 = StdRng::seed_from_u64(9);
        let b = SeedSequence::from_rng(&mut rng2);
        assert_eq!(a, b);
        let seeds: Vec<u64> = (0..1000).map(|i| a.seed(i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "seed collision");
        // Drawing the base advances the caller's RNG exactly one u64.
        let mut rng3 = StdRng::seed_from_u64(9);
        let _ = rng3.gen::<u64>();
        assert_eq!(rng.gen::<u64>(), rng3.gen::<u64>());
    }

    #[test]
    fn seeded_jobs_match_across_thread_counts() {
        let seq = SeedSequence::new(0xDEAD_BEEF);
        let run = |par: Parallelism| {
            par_map_indexed(par, 64, |i| {
                let mut rng = StdRng::seed_from_u64(seq.seed(i as u64));
                (0..32).map(|_| rng.gen::<u64>() >> 40).sum::<u64>()
            })
        };
        let one = run(Parallelism::Sequential);
        assert_eq!(one, run(Parallelism::threads(2)));
        assert_eq!(one, run(Parallelism::threads(7)));
    }

    #[test]
    fn parallelism_parses_from_cli_spellings() {
        assert_eq!("seq".parse(), Ok(Parallelism::Sequential));
        assert_eq!("Sequential".parse(), Ok(Parallelism::Sequential));
        assert_eq!("auto".parse(), Ok(Parallelism::Auto));
        assert_eq!("0".parse(), Ok(Parallelism::Auto));
        assert_eq!("4".parse(), Ok(Parallelism::threads(4)));
        assert!(" 8 ".parse::<Parallelism>().is_ok());
        assert!("nope".parse::<Parallelism>().is_err());
        assert!("-3".parse::<Parallelism>().is_err());
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(Parallelism::Sequential.thread_count(), 1);
        assert_eq!(Parallelism::threads(5).thread_count(), 5);
        assert!(Parallelism::Auto.thread_count() >= 1);
        assert_eq!(Parallelism::threads(0), Parallelism::Auto);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn job_panics_propagate() {
        let _ = par_map_indexed(Parallelism::threads(2), 8, |i| {
            assert!(i != 5, "boom");
            i
        });
    }
}
