//! # mms-exec — deterministic parallel execution
//!
//! The Monte-Carlo reliability trials, the design-space sweep, and the
//! ablation scenario grids are all embarrassingly parallel: independent
//! jobs whose results are combined by index. This crate gives them one
//! shared worker pool built on [`std::thread::scope`] (the
//! standard-library equivalent of crossbeam's scoped threads — no
//! external dependency needed) with two guarantees:
//!
//! 1. **Results are index-ordered.** [`par_map_indexed`] returns
//!    `out[i] = f(i)` regardless of which worker computed which index or
//!    in what order they finished — the output is a pure function of the
//!    input, never of scheduling.
//! 2. **Randomness is pre-split.** [`SeedSequence`] derives one
//!    independent SplitMix64-mixed seed per job index from a single base
//!    seed drawn from the caller's RNG. A job's random stream depends
//!    only on `(base, index)`, so stochastic workloads are bit-identical
//!    at 1, 2, or 64 threads.
//!
//! Together these make "how many threads?" a pure performance knob
//! ([`Parallelism`]) that can never change a result.
//!
//! ## Telemetry
//!
//! When a `mms-telemetry` collector is installed on the *calling*
//! thread, every job runs under its own fresh
//! [`Recorder`] (worker threads never share
//! one), and the captured events and metrics are absorbed into the
//! caller's collector **in job index order** after the pool joins. Job
//! telemetry at `Debug` and above is therefore bit-identical for any
//! thread count, exactly like the results. Pool diagnostics (per-worker
//! job counts and wall-clock busy time) are scheduling-dependent and
//! only emitted at [`Level::Trace`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mms_telemetry::{event, EventRecord, Level, Recorder, Registry};
use rand::Rng;
use std::fmt;
use std::num::NonZeroUsize;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads an operation may use.
///
/// Purely a performance knob: every consumer in this workspace is
/// required to produce bit-identical results for any variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread, spawning nothing.
    Sequential,
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]; falls back to 1 if the
    /// platform cannot say).
    #[default]
    Auto,
    /// Exactly this many workers.
    Threads(NonZeroUsize),
}

impl Parallelism {
    /// A fixed thread count; `n = 0` is treated as [`Parallelism::Auto`].
    #[must_use]
    pub fn threads(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) => Parallelism::Threads(n),
            None => Parallelism::Auto,
        }
    }

    /// The number of workers this setting resolves to right now.
    #[must_use]
    pub fn thread_count(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Threads(n) => n.get(),
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Sequential => write!(f, "seq"),
            Parallelism::Auto => write!(f, "auto"),
            Parallelism::Threads(n) => write!(f, "{n}"),
        }
    }
}

/// Error from parsing a [`Parallelism`] out of a CLI flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseParallelismError(String);

impl fmt::Display for ParseParallelismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid thread count {:?}: expected a positive integer, \"auto\", or \"seq\"",
            self.0
        )
    }
}

impl std::error::Error for ParseParallelismError {}

impl FromStr for Parallelism {
    type Err = ParseParallelismError;

    /// `"seq"`/`"sequential"` → [`Sequential`](Parallelism::Sequential),
    /// `"auto"`/`"0"` → [`Auto`](Parallelism::Auto), a positive integer
    /// → [`Threads`](Parallelism::Threads).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "seq" | "sequential" => Ok(Parallelism::Sequential),
            "auto" | "0" => Ok(Parallelism::Auto),
            t => t
                .parse::<usize>()
                .map(Parallelism::threads)
                .map_err(|_| ParseParallelismError(s.to_string())),
        }
    }
}

/// A job's captured telemetry, extracted on the worker thread so it can
/// be sent back to the caller for in-order absorption.
type JobTelemetry = (Vec<EventRecord>, Registry);

/// Batches smaller than this run inline on the calling thread even when
/// parallelism is available.
///
/// Spawning the pool costs thread creation plus per-job telemetry
/// absorption, which dwarfs tiny jobs: the 36-job design-space sweep ran
/// in 0.003 s sequentially but 0.14 s on 2 threads before this cutoff.
/// The threshold sits above that sweep (36 jobs) and below the smallest
/// Monte-Carlo batch (48 trials), which is long enough to amortize the
/// pool. Callers whose individual jobs are expensive enough to beat the
/// spawn cost at any count (e.g. whole-simulation grids) can lower the
/// bar via [`par_map_indexed_min`]. Never a correctness knob: results
/// and `Debug`-and-above telemetry are identical either way.
pub const SMALL_BATCH_THRESHOLD: usize = 40;

/// Run one job, under a fresh per-job [`Recorder`] when the caller had a
/// collector installed (`level` is its max level).
fn run_job<T, F>(f: &F, i: usize, level: Option<Level>) -> (T, Option<JobTelemetry>)
where
    F: Fn(usize) -> T,
{
    match level {
        None => (f(i), None),
        Some(level) => {
            let recorder = Recorder::new(level);
            let value = {
                let _guard = recorder.install();
                f(i)
            };
            (value, Some(recorder.into_parts()))
        }
    }
}

/// Map `f` over `0..n`, returning `vec![f(0), f(1), …, f(n-1)]`.
///
/// Workers claim indices from a shared atomic counter (dynamic
/// load-balancing — long jobs don't stall a fixed chunk) and stash
/// `(index, value)` pairs locally; results are slotted by index after
/// the scope joins, so the output order is deterministic no matter how
/// the indices were interleaved. A panic in any job propagates to the
/// caller.
///
/// If the calling thread has a telemetry collector installed, each job
/// records into its own [`Recorder`] and the captured records are
/// absorbed in index order after the join (see the crate docs), so the
/// sequential path and every thread count produce the same stream.
pub fn par_map_indexed<T, F>(par: Parallelism, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_min(par, n, SMALL_BATCH_THRESHOLD, f)
}

/// [`par_map_indexed`] with an explicit work-size threshold: batches of
/// fewer than `min_jobs` jobs run inline on the calling thread without
/// spawning the pool (as does `threads == 1`). Use a lower `min_jobs`
/// than [`SMALL_BATCH_THRESHOLD`] when each job is expensive enough to
/// amortize a thread spawn on its own.
pub fn par_map_indexed_min<T, F>(par: Parallelism, n: usize, min_jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let level = mms_telemetry::current_max_level();
    event!(Level::Debug, "exec.batch", jobs = n);
    let workers = par.thread_count().min(n);
    if workers <= 1 || n < min_jobs {
        return (0..n)
            .map(|i| {
                let (value, telemetry) = run_job(&f, i, level);
                if let Some((events, registry)) = telemetry {
                    mms_telemetry::dispatch_absorb(events, &registry);
                }
                value
            })
            .collect();
    }
    let trace_pool = level >= Some(Level::Trace);
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    type WorkerOut<T> = (Vec<(usize, T, Option<JobTelemetry>)>, f64);
    let per_worker: Vec<WorkerOut<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    #[allow(clippy::disallowed_methods)]
                    // lint:allow(determinism): worker busy-time is a Trace-only diagnostic; it never feeds results
                    let started = trace_pool.then(std::time::Instant::now);
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let (value, telemetry) = run_job(f, i, level);
                        mine.push((i, value, telemetry));
                    }
                    let busy_ms = started.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3);
                    (mine, busy_ms)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<(T, Option<JobTelemetry>)>> = (0..n).map(|_| None).collect();
    for (worker, (mine, busy_ms)) in per_worker.into_iter().enumerate() {
        // Scheduling-dependent by nature, hence Trace-only.
        event!(
            Level::Trace,
            "exec.worker",
            worker = worker,
            jobs = mine.len(),
            busy_ms = busy_ms
        );
        for (i, value, telemetry) in mine {
            debug_assert!(slots[i].is_none(), "index {i} claimed twice");
            slots[i] = Some((value, telemetry));
        }
    }
    slots
        .into_iter()
        .map(|s| {
            let (value, telemetry) = s.expect("every index claimed exactly once");
            if let Some((events, registry)) = telemetry {
                mms_telemetry::dispatch_absorb(events, &registry);
            }
            value
        })
        .collect()
}

/// Map `f` over a slice, preserving order: `out[i] = f(&items[i])`.
pub fn par_map<I, T, F>(par: Parallelism, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_indexed(par, items.len(), |i| f(&items[i]))
}

/// A splittable stream of per-job seeds.
///
/// One base seed is drawn from the caller's RNG (advancing it exactly
/// once, so the caller's subsequent draws are also reproducible); each
/// job `i` then gets `seed(i)`, a SplitMix64 mix of the base and the
/// index stepped by the golden-ratio increment. Jobs seeded this way are
/// statistically independent and — crucially — independent of which
/// thread runs them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    base: u64,
}

/// SplitMix64's golden-ratio stream increment.
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SeedSequence {
    /// A sequence rooted at an explicit base seed.
    #[must_use]
    pub fn new(base: u64) -> Self {
        SeedSequence { base }
    }

    /// Draw the base seed from `rng` (one `u64`, exactly once).
    pub fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        SeedSequence::new(rng.gen::<u64>())
    }

    /// The seed for job `index`.
    #[must_use]
    pub fn seed(&self, index: u64) -> u64 {
        rand::splitmix64_mix(
            self.base
                .wrapping_add(index.wrapping_add(1).wrapping_mul(GOLDEN_GAMMA)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn results_are_index_ordered_at_any_thread_count() {
        let n = 403;
        let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
        for par in [
            Parallelism::Sequential,
            Parallelism::threads(2),
            Parallelism::threads(3),
            Parallelism::threads(8),
            Parallelism::Auto,
        ] {
            let got = par_map_indexed(par, n, |i| i * i);
            assert_eq!(got, expect, "mismatch under {par}");
        }
    }

    #[test]
    fn par_map_preserves_slice_order() {
        let items: Vec<i64> = (0..97).map(|i| i * 3 - 40).collect();
        let got = par_map(Parallelism::threads(4), &items, |x| x + 1);
        let expect: Vec<i64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = par_map_indexed(Parallelism::threads(8), 0, |_| 0u8);
        assert!(empty.is_empty());
        assert_eq!(par_map_indexed(Parallelism::threads(8), 1, |i| i), vec![0]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let got = par_map_indexed(Parallelism::threads(64), 3, |i| i * 10);
        assert_eq!(got, vec![0, 10, 20]);
    }

    #[test]
    fn small_batches_run_inline_without_the_pool() {
        // A panic below the threshold surfaces directly ("boom"), not as
        // the pool's "worker panicked" join failure — proving no worker
        // thread was spawned for the tiny batch.
        let result = std::panic::catch_unwind(|| {
            par_map_indexed(Parallelism::threads(8), SMALL_BATCH_THRESHOLD - 1, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        let msg = *result.unwrap_err().downcast::<&str>().unwrap();
        assert!(msg.contains("boom"), "{msg}");
        assert!(!msg.contains("worker panicked"), "{msg}");
    }

    #[test]
    fn min_jobs_override_engages_the_pool_for_tiny_batches() {
        // Same panic probe with min_jobs = 0: the pool spawns, so the
        // panic propagates as the join failure.
        let result = std::panic::catch_unwind(|| {
            par_map_indexed_min(Parallelism::threads(2), 8, 0, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("worker panicked"), "{msg}");
    }

    #[test]
    fn seed_sequence_is_deterministic_and_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = SeedSequence::from_rng(&mut rng);
        let mut rng2 = StdRng::seed_from_u64(9);
        let b = SeedSequence::from_rng(&mut rng2);
        assert_eq!(a, b);
        let seeds: Vec<u64> = (0..1000).map(|i| a.seed(i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "seed collision");
        // Drawing the base advances the caller's RNG exactly one u64.
        let mut rng3 = StdRng::seed_from_u64(9);
        let _ = rng3.gen::<u64>();
        assert_eq!(rng.gen::<u64>(), rng3.gen::<u64>());
    }

    #[test]
    fn seeded_jobs_match_across_thread_counts() {
        let seq = SeedSequence::new(0xDEAD_BEEF);
        let run = |par: Parallelism| {
            par_map_indexed(par, 64, |i| {
                let mut rng = StdRng::seed_from_u64(seq.seed(i as u64));
                (0..32).map(|_| rng.gen::<u64>() >> 40).sum::<u64>()
            })
        };
        let one = run(Parallelism::Sequential);
        assert_eq!(one, run(Parallelism::threads(2)));
        assert_eq!(one, run(Parallelism::threads(7)));
    }

    #[test]
    fn parallelism_parses_from_cli_spellings() {
        assert_eq!("seq".parse(), Ok(Parallelism::Sequential));
        assert_eq!("Sequential".parse(), Ok(Parallelism::Sequential));
        assert_eq!("auto".parse(), Ok(Parallelism::Auto));
        assert_eq!("0".parse(), Ok(Parallelism::Auto));
        assert_eq!("4".parse(), Ok(Parallelism::threads(4)));
        assert!(" 8 ".parse::<Parallelism>().is_ok());
        assert!("nope".parse::<Parallelism>().is_err());
        assert!("-3".parse::<Parallelism>().is_err());
    }

    #[test]
    fn thread_count_resolution() {
        assert_eq!(Parallelism::Sequential.thread_count(), 1);
        assert_eq!(Parallelism::threads(5).thread_count(), 5);
        assert!(Parallelism::Auto.thread_count() >= 1);
        assert_eq!(Parallelism::threads(0), Parallelism::Auto);
    }

    #[test]
    fn traced_jobs_merge_in_index_order_at_any_thread_count() {
        let run = |par: Parallelism| {
            let rec = Recorder::new(Level::Debug);
            let sums = {
                let _g = rec.install();
                par_map_indexed(par, 48, |i| {
                    mms_telemetry::event!(Level::Debug, "job", index = i);
                    mms_telemetry::counter!("exec.test.jobs", 1);
                    i as u64
                })
            };
            (sums, rec.take_events(), rec.snapshot())
        };
        let (seq_sums, seq_events, seq_snap) = run(Parallelism::Sequential);
        assert_eq!(
            seq_snap
                .counters
                .iter()
                .find(|(k, _)| k.name == "exec.test.jobs")
                .unwrap()
                .1,
            48
        );
        // Job events arrive in index order, after the batch event.
        assert_eq!(seq_events[0].name, "exec.batch");
        let indices: Vec<String> = seq_events
            .iter()
            .filter(|e| e.name == "job")
            .map(|e| e.field("index").unwrap().to_string())
            .collect();
        let expect: Vec<String> = (0..48).map(|i| i.to_string()).collect();
        assert_eq!(indices, expect);
        for par in [Parallelism::threads(2), Parallelism::threads(8)] {
            let (sums, events, snap) = run(par);
            assert_eq!(sums, seq_sums);
            assert_eq!(events, seq_events, "event stream differs under {par}");
            assert_eq!(
                snap.counters
                    .iter()
                    .find(|(k, _)| k.name == "exec.test.jobs")
                    .unwrap()
                    .1,
                48
            );
        }
    }

    #[test]
    fn untraced_runs_emit_nothing() {
        let rec = Recorder::new(Level::Trace);
        let _ = par_map_indexed(Parallelism::threads(2), 8, |i| i);
        assert_eq!(rec.take_events().len(), 0);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn job_panics_propagate() {
        let _ = par_map_indexed(Parallelism::threads(2), 64, |i| {
            assert!(i != 50, "boom");
            i
        });
    }
}
