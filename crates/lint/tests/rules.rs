//! Fixture corpus: every rule must fire on its known-bad fixture at the
//! expected lines and stay silent on the known-good one. Fixtures live
//! under `tests/fixtures/`, which the workspace walk excludes, so they
//! can be as bad as the rules require.

use mms_lint::{lint_source, FileOutcome, RuleSet};

fn check(path: &str, src: &str) -> FileOutcome {
    lint_source(path, src, &RuleSet::all())
}

/// (rule, line) pairs of every finding, in emission order.
fn keys(outcome: &FileOutcome) -> Vec<(&str, u32)> {
    outcome
        .findings
        .iter()
        .map(|f| (f.rule.as_str(), f.line))
        .collect()
}

#[test]
fn determinism_flags_every_banned_ident_outside_tests() {
    let out = check(
        "crates/sim/src/bad.rs",
        include_str!("fixtures/determinism_bad.rs"),
    );
    // Line 4 names both `HashMap` and `Instant`; the `HashSet` in
    // `mod tests` is exempt.
    assert_eq!(
        keys(&out),
        vec![
            ("determinism", 1),
            ("determinism", 2),
            ("determinism", 4),
            ("determinism", 4),
            ("determinism", 5),
        ]
    );
}

#[test]
fn determinism_accepts_ordered_collections() {
    let out = check(
        "crates/sim/src/good.rs",
        include_str!("fixtures/determinism_good.rs"),
    );
    assert!(
        out.findings.is_empty(),
        "clean fixture produced {:?}",
        out.findings
    );
}

#[test]
fn determinism_scopes_to_deterministic_library_code() {
    let src = "use std::time::Instant;\n";
    // mms-bench measures wall time on purpose.
    assert!(check("crates/bench/src/timing.rs", src).findings.is_empty());
    // Binaries and test targets are outside the rule's scope.
    assert!(check("crates/sim/src/bin/tool.rs", src).findings.is_empty());
    assert!(check("crates/sim/tests/clock.rs", src).findings.is_empty());
    // The same text inside a deterministic crate's library is a finding.
    assert_eq!(
        keys(&check("crates/sim/src/clock.rs", src)),
        vec![("determinism", 1)]
    );
}

#[test]
fn hot_path_alloc_flags_every_forbidden_constructor() {
    let out = check(
        "crates/sim/src/simulator.rs",
        include_str!("fixtures/hot_alloc_bad.rs"),
    );
    assert_eq!(
        keys(&out),
        vec![
            ("hot-path-alloc", 5),
            ("hot-path-alloc", 7),
            ("hot-path-alloc", 8),
            ("hot-path-alloc", 9),
            ("hot-path-alloc", 10),
            ("hot-path-alloc", 11),
        ]
    );
    assert!(
        out.hot_matched[3],
        "Simulator::run_sessions must match its registry entry"
    );
}

#[test]
fn hot_path_alloc_ignores_unregistered_functions() {
    // `Other::step` and the free `helper` allocate, but only
    // `Simulator::run_sessions` is registered for this file.
    let out = check(
        "crates/sim/src/simulator.rs",
        include_str!("fixtures/hot_alloc_good.rs"),
    );
    assert!(
        out.findings.is_empty(),
        "clean fixture produced {:?}",
        out.findings
    );
    assert!(out.hot_matched[3]);
}

#[test]
fn hot_path_alloc_matches_on_the_full_registry_path() {
    // Same content, different crate: the registry entry is keyed on
    // `crates/sim/src/simulator.rs`, so nothing matches or fires.
    let out = check(
        "crates/other/src/simulator.rs",
        include_str!("fixtures/hot_alloc_bad.rs"),
    );
    assert!(out.findings.is_empty());
    assert!(out.hot_matched.iter().all(|&m| !m));
}

#[test]
fn panic_policy_flags_placeholder_messages_and_bare_unwraps() {
    let out = check(
        "crates/core/src/panics.rs",
        include_str!("fixtures/panic_bad.rs"),
    );
    // 2: `.unwrap()`; 6: short `.expect`; 11: short `panic!`;
    // 17: non-literal `.expect(msg)`. The unwrap in `mod tests` is exempt.
    assert_eq!(
        keys(&out),
        vec![
            ("panic-policy", 2),
            ("panic-policy", 6),
            ("panic-policy", 11),
            ("panic-policy", 17),
        ]
    );
}

#[test]
fn panic_policy_accepts_invariant_messages_and_annotations() {
    let out = check(
        "crates/core/src/panics_ok.rs",
        include_str!("fixtures/panic_good.rs"),
    );
    assert!(
        out.findings.is_empty(),
        "clean fixture produced {:?}",
        out.findings
    );
}

#[test]
fn unsafe_pragma_requires_the_attribute_in_code() {
    let out = check(
        "crates/core/src/lib.rs",
        include_str!("fixtures/pragma_missing.rs"),
    );
    assert_eq!(keys(&out), vec![("unsafe-pragma", 1)]);
}

#[test]
fn unsafe_pragma_accepts_a_compliant_root_and_skips_non_roots() {
    let ok = check(
        "crates/core/src/lib.rs",
        include_str!("fixtures/pragma_ok.rs"),
    );
    assert!(
        ok.findings.is_empty(),
        "clean fixture produced {:?}",
        ok.findings
    );
    // The same pragma-less text anywhere else is not a crate root.
    let non_root = check(
        "crates/core/src/util.rs",
        include_str!("fixtures/pragma_missing.rs"),
    );
    assert!(non_root.findings.is_empty());
}

#[test]
fn paper_refs_flags_out_of_range_citations_and_collects_valid_ones() {
    let out = check(
        "crates/analysis/src/notes.rs",
        include_str!("fixtures/paper_refs_bad.rs"),
    );
    assert_eq!(
        keys(&out),
        vec![("paper-refs", 3), ("paper-refs", 6), ("paper-refs", 9)]
    );
    assert_eq!(
        out.eq_cited,
        vec![7],
        "the in-range citation feeds coverage"
    );
}

#[test]
fn allow_annotations_suppress_track_usage_and_demand_hygiene() {
    let out = check(
        "crates/sim/src/allows.rs",
        include_str!("fixtures/allow_cases.rs"),
    );
    // 16: the reason-less annotation suppresses nothing, so the
    // violation itself still fires; 10: unused annotation; 15: missing
    // reason; 21: unknown rule name. The annotated violation on line 5
    // is suppressed and produces nothing.
    assert_eq!(
        keys(&out),
        vec![
            ("determinism", 16),
            ("lint-allow", 10),
            ("lint-allow", 15),
            ("lint-allow", 21),
        ]
    );
    let unused = &out.findings[1];
    assert!(
        unused.message.contains("unused"),
        "line 10 is the stale annotation"
    );
    let unknown = &out.findings[3];
    assert!(
        unknown.message.contains("unknown rule"),
        "line 21 names a bogus rule"
    );
}

#[test]
fn rule_selection_limits_what_fires() {
    let set = RuleSet::only(&["determinism".to_string()]).expect("known rule");
    let out = lint_source(
        "crates/core/src/lib.rs",
        include_str!("fixtures/pragma_missing.rs"),
        &set,
    );
    assert!(
        out.findings.is_empty(),
        "unsafe-pragma is inactive in this run"
    );
    assert!(RuleSet::only(&["no-such-rule".to_string()]).is_err());
}
