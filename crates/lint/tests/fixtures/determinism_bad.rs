use std::collections::HashMap;
use std::time::Instant;

pub fn cache() -> HashMap<u32, Instant> {
    HashMap::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn hash_collections_are_fine_in_tests() {
        let _ = HashSet::<u32>::new();
    }
}
