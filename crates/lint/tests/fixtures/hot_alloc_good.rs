pub struct Simulator;

impl Simulator {
    pub fn run_sessions(&mut self, scratch: &mut Vec<u32>) -> usize {
        scratch.clear();
        scratch.extend(0..4u32);
        scratch.len()
    }
}

pub struct Other;

impl Other {
    pub fn step(&mut self) -> Vec<u32> {
        Vec::new()
    }
}

pub fn helper() -> Vec<u32> {
    Vec::new()
}
