//! A crate root that forgot the pragma.

// #![forbid(unsafe_code)] in a comment must not count

pub fn noop() {}
