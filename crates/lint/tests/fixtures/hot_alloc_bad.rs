pub struct Simulator;

impl Simulator {
    pub fn run_sessions(&mut self) -> usize {
        let mut v = Vec::new();
        v.push(1u32);
        let w = vec![0u8; 4];
        let s = format!("{}", v.len());
        let t = w.to_vec();
        let b = Box::new(3u8);
        let c: Vec<u32> = v.iter().copied().collect();
        v.len() + w.len() + s.len() + t.len() + c.len() + usize::from(*b)
    }
}
