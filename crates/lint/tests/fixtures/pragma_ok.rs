//! A crate root carrying the pragma.

#![forbid(unsafe_code)]

pub fn noop() {}
