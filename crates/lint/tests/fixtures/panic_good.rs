pub fn first(v: &[u32]) -> u32 {
    *v.first().expect("caller guarantees a non-empty slice")
}

pub fn checked(v: &[u32]) -> u32 {
    if v.len() < 2 {
        panic!("admission control caps streams below the slice length")
    }
    v[1]
}

pub fn annotated(v: &[u32]) -> u32 {
    // lint:allow(panic-policy): index checked by the caller's loop bound
    *v.first().unwrap()
}
