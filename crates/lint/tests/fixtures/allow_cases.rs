//! Annotation hygiene cases.

pub fn suppressed() -> u64 {
    // lint:allow(determinism): this fixture proves suppression works
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn unused() -> u32 {
    // lint:allow(determinism): nothing on the next line violates this
    42
}

pub fn missing_reason() -> u64 {
    // lint:allow(determinism)
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn unknown_rule() -> u32 {
    // lint:allow(no-such-rule): misspelled rule names must not pass
    7
}
