//! Citations that overreach the paper.

/// Computes the bound of Eq. 23 (the paper stops at 19).
pub fn a() {}

// See Figure 12 for the topology (the paper stops at 9).
pub fn b() {}

// Compare Table 9 and Eq. 7.
pub fn c() {}
