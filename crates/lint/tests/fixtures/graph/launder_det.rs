pub fn stamp() -> u64 {
    helper_now()
}
