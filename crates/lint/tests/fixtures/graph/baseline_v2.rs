pub struct Simulator;

impl Simulator {
    pub fn run_sessions(&mut self) -> usize {
        old_helper() + new_helper()
    }
}

pub fn old_helper() -> usize {
    let v: Vec<u32> = Vec::new();
    v.len()
}

pub fn new_helper() -> usize {
    let v = vec![9u32];
    v.len()
}
