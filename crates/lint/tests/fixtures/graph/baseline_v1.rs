pub struct Simulator;

impl Simulator {
    pub fn run_sessions(&mut self) -> usize {
        old_helper()
    }
}

pub fn old_helper() -> usize {
    let v: Vec<u32> = Vec::new();
    v.len()
}
