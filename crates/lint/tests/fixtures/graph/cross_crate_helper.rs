pub fn lookup_blocks() -> Vec<u32> {
    let mut v = Vec::new();
    v.push(7);
    v
}
