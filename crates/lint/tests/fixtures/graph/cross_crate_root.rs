pub struct Simulator;

impl Simulator {
    pub fn run_sessions(&mut self) -> usize {
        lookup_blocks().len()
    }
}
