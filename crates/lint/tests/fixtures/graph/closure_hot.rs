pub struct Simulator;

impl Simulator {
    pub fn run_sessions(&mut self) -> usize {
        drain()
    }
}

pub fn drain() -> usize {
    accumulate(|n| {
        let mut v = Vec::new();
        v.push(n);
        v.len()
    })
}

pub fn accumulate<F: FnMut(u32) -> usize>(mut f: F) -> usize {
    f(3)
}
