pub trait Planner {
    fn plan(&mut self) -> usize;
}

pub struct CleanPlanner;

impl Planner for CleanPlanner {
    fn plan(&mut self) -> usize {
        1
    }
}

pub struct AllocPlanner;

impl Planner for AllocPlanner {
    fn plan(&mut self) -> usize {
        let v = vec![1u32, 2];
        v.len()
    }
}

pub struct Simulator {
    planner: Box<dyn Planner>,
}

impl Simulator {
    pub fn run_sessions(&mut self) -> usize {
        self.planner.plan()
    }
}
