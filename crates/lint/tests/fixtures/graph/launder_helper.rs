use std::time::Instant;

pub fn helper_now() -> u64 {
    let t = Instant::now();
    drop(t);
    0
}
