use std::collections::BTreeMap;

pub fn cache() -> BTreeMap<u32, u64> {
    BTreeMap::new()
}
