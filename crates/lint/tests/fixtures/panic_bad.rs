pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn second(v: &[u32]) -> u32 {
    *v.get(1).expect("bad")
}

pub fn third(v: &[u32]) -> u32 {
    if v.is_empty() {
        panic!("empty")
    }
    v[0]
}

pub fn fourth(v: &[u32], msg: &str) -> u32 {
    *v.first().expect(msg)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = [1u32];
        let _ = *v.first().unwrap();
    }
}
