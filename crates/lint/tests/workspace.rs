//! The integration check: the real workspace must be lint-clean, every
//! hot-registry entry must resolve, and all 19 equations must be cited.
//! If a refactor renames a registered item or introduces a violation,
//! this test fails with the full report.

use mms_lint::{check_workspace, find_root, RuleSet};
use std::path::Path;

fn root() -> std::path::PathBuf {
    find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the linter crate lives inside the workspace")
}

#[test]
fn real_workspace_is_clean() {
    let report = check_workspace(&root(), &RuleSet::all()).expect("workspace scan succeeds");
    assert!(
        report.ok(),
        "the workspace has lint findings:\n{}",
        report.render_text(true)
    );
    assert!(
        report.files_checked > 100,
        "only {} files scanned — walk roots look wrong",
        report.files_checked
    );
}

#[test]
fn every_equation_is_cited_in_its_registered_file() {
    let report = check_workspace(&root(), &RuleSet::all()).expect("workspace scan succeeds");
    assert_eq!(report.coverage.len(), 19, "one coverage row per equation");
    assert_eq!(
        report.cited(),
        19,
        "uncited equations:\n{}",
        report.render_text(true)
    );
}

#[test]
fn single_rule_runs_see_the_same_clean_tree() {
    for rule in [
        "determinism",
        "hot-path-alloc",
        "unsafe-pragma",
        "panic-policy",
    ] {
        let set = RuleSet::only(&[rule.to_string()]).expect("known rule name");
        let report = check_workspace(&root(), &set).expect("workspace scan succeeds");
        assert!(
            report.ok(),
            "rule {rule} found violations:\n{}",
            report.render_text(false)
        );
    }
}
