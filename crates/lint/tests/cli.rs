//! End-to-end CLI tests: exit codes, finding output, and JSON shape,
//! driven against throwaway mini-workspaces under the target tmpdir.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_mms-lint");

/// Build a one-crate workspace whose `crates/core/src/lib.rs` has the
/// given content, isolated per test under CARGO_TARGET_TMPDIR.
fn mini_workspace(name: &str, lib_rs: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("crates/core/src");
    fs::create_dir_all(&src).expect("tmpdir is writable");
    fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("tmpdir is writable");
    fs::write(src.join("lib.rs"), lib_rs).expect("tmpdir is writable");
    root
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("mms-lint binary runs")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("mms-lint exits normally")
}

#[test]
fn check_reports_findings_with_file_and_line_and_exits_1() {
    let root = mini_workspace(
        "lint-cli-bad",
        "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> {\n    HashMap::new()\n}\n",
    );
    let out = run(&[
        "check",
        "--rule",
        "unsafe-pragma",
        "--rule",
        "determinism",
        "--root",
        root.to_str().expect("utf-8 tmpdir"),
    ]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(
        stdout.contains("crates/core/src/lib.rs:1: [unsafe-pragma]"),
        "missing pragma finding in:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/core/src/lib.rs:1: [determinism]"),
        "missing determinism finding in:\n{stdout}"
    );
}

#[test]
fn check_on_a_clean_mini_workspace_exits_0() {
    let root = mini_workspace(
        "lint-cli-clean",
        "#![forbid(unsafe_code)]\npub fn f() -> u32 {\n    7\n}\n",
    );
    let out = run(&[
        "check",
        "--rule",
        "unsafe-pragma",
        "--rule",
        "determinism",
        "--rule",
        "panic-policy",
        "--root",
        root.to_str().expect("utf-8 tmpdir"),
    ]);
    let code = exit_code(&out);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert_eq!(code, 0, "clean tree reported findings:\n{stdout}");
    assert!(
        stdout.contains("1 file(s) checked, 0 finding(s)"),
        "summary in:\n{stdout}"
    );
}

#[test]
fn json_output_carries_findings_and_ok_flag() {
    let root = mini_workspace(
        "lint-cli-json",
        "pub fn f(v: &[u32]) -> u32 {\n    *v.first().unwrap()\n}\n",
    );
    let out = run(&[
        "check",
        "--rule",
        "panic-policy",
        "--json",
        "--root",
        root.to_str().expect("utf-8 tmpdir"),
    ]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 json");
    assert!(stdout.trim_start().starts_with('{'));
    assert!(
        stdout.contains("\"rule\": \"panic-policy\""),
        "finding in:\n{stdout}"
    );
    assert!(stdout.contains("\"line\": 2"), "line in:\n{stdout}");
    assert!(stdout.contains("\"ok\": false"), "ok flag in:\n{stdout}");
}

#[test]
fn check_on_the_real_workspace_exits_0() {
    let root = mms_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the linter crate lives inside the workspace");
    let out = run(&[
        "check",
        "--root",
        root.to_str().expect("utf-8 workspace root"),
    ]);
    let code = exit_code(&out);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert_eq!(code, 0, "the real tree must be clean:\n{stdout}");
    assert!(
        stdout.contains("paper-refs coverage: 19/19 equations cited"),
        "coverage summary in:\n{stdout}"
    );
}

#[test]
fn rules_subcommand_lists_all_eight() {
    let out = run(&["rules"]);
    assert_eq!(exit_code(&out), 0);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 list");
    let listed: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        listed,
        vec![
            "determinism",
            "hot-path-alloc",
            "unsafe-pragma",
            "panic-policy",
            "paper-refs",
            "transitive-alloc",
            "determinism-taint",
            "panic-reachability"
        ]
    );
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(exit_code(&run(&["check", "--rule", "no-such-rule"])), 2);
    assert_eq!(exit_code(&run(&["check", "--bogus-flag"])), 2);
    assert_eq!(exit_code(&run(&["frobnicate"])), 2);
    assert_eq!(exit_code(&run(&[])), 2);
}
