//! Interprocedural-rule fixtures: each test materializes a mini
//! multi-crate workspace under the target tmpdir from the corpus in
//! `fixtures/graph/` and drives the real CLI binary against it, so the
//! whole pipeline (walk → symbol table → call graph → taint → report)
//! is exercised end to end.
//!
//! The fixtures place hot roots at the registry's real paths
//! (`Simulator::run_sessions` in `crates/sim/src/simulator.rs`) so
//! `resolve_roots` finds them without a test-only registry.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_mms-lint");

/// Build a throwaway workspace with the given `(relative path, source)`
/// files, isolated per test name. Crate manifests are omitted on
/// purpose: the dependency filter is permissive without them, which is
/// exactly the conservative behavior the fixtures rely on.
fn graph_workspace(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    // Re-runs must not see stale files from a previous corpus shape.
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).expect("tmpdir is writable");
    fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("tmpdir is writable");
    for (rel, src) in files {
        let p = root.join(rel);
        fs::create_dir_all(p.parent().expect("fixture paths have parents"))
            .expect("tmpdir is writable");
        fs::write(p, src).expect("tmpdir is writable");
    }
    root
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("mms-lint binary runs")
}

fn check(root: &Path, rule: &str) -> (i32, String) {
    let out = run(&[
        "check",
        "--rule",
        rule,
        "--root",
        root.to_str().expect("utf-8 tmpdir"),
    ]);
    let code = out.status.code().expect("mms-lint exits normally");
    (code, String::from_utf8(out.stdout).expect("utf-8 report"))
}

#[test]
fn cross_crate_chain_is_flagged_with_the_full_path() {
    let root = graph_workspace(
        "graph-cross-crate",
        &[
            (
                "crates/sim/src/simulator.rs",
                include_str!("fixtures/graph/cross_crate_root.rs"),
            ),
            (
                "crates/layout/src/catalog.rs",
                include_str!("fixtures/graph/cross_crate_helper.rs"),
            ),
        ],
    );
    let (code, stdout) = check(&root, "transitive-alloc");
    assert_eq!(code, 1, "cross-crate alloc must fail:\n{stdout}");
    assert!(
        stdout.contains("`Vec::new` in `lookup_blocks`"),
        "helper's alloc flagged in:\n{stdout}"
    );
    assert!(
        stdout.contains("Simulator::run_sessions"),
        "chain names the root in:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/layout/src/catalog.rs"),
        "chain crosses crates in:\n{stdout}"
    );
}

#[test]
fn trait_object_dispatch_over_approximates_to_all_implementors() {
    let root = graph_workspace(
        "graph-trait-dispatch",
        &[(
            "crates/sim/src/simulator.rs",
            include_str!("fixtures/graph/trait_dispatch.rs"),
        )],
    );
    let (code, stdout) = check(&root, "transitive-alloc");
    assert_eq!(code, 1, "dyn dispatch must reach the impl:\n{stdout}");
    // The receiver is `Box<dyn Planner>`: the analyzer cannot know the
    // concrete type, so every implementor is a candidate and the
    // allocating one is flagged…
    assert!(
        stdout.contains("AllocPlanner::plan"),
        "allocating implementor flagged in:\n{stdout}"
    );
    // …while the clean implementor contributes no finding.
    assert!(
        !stdout.contains("CleanPlanner"),
        "clean implementor not flagged in:\n{stdout}"
    );
}

#[test]
fn closure_alloc_is_attributed_to_the_enclosing_fn() {
    let root = graph_workspace(
        "graph-closure",
        &[(
            "crates/sim/src/simulator.rs",
            include_str!("fixtures/graph/closure_hot.rs"),
        )],
    );
    let (code, stdout) = check(&root, "transitive-alloc");
    assert_eq!(code, 1, "closure alloc must fail:\n{stdout}");
    // The `Vec::new` sits inside a closure literal, but the fact (and
    // the chain) land on the enclosing `drain`.
    assert!(
        stdout.contains("`Vec::new` in `drain`"),
        "closure attributed to enclosing fn in:\n{stdout}"
    );
    assert!(
        stdout.contains("Simulator::run_sessions"),
        "chain reaches the root in:\n{stdout}"
    );
}

#[test]
fn laundered_nondeterminism_is_caught_at_the_frontier() {
    let root = graph_workspace(
        "graph-launder",
        &[
            (
                "crates/sim/src/clock.rs",
                include_str!("fixtures/graph/launder_det.rs"),
            ),
            (
                "crates/bench/src/util.rs",
                include_str!("fixtures/graph/launder_helper.rs"),
            ),
        ],
    );
    let (code, stdout) = check(&root, "determinism-taint");
    assert_eq!(code, 1, "laundering must fail:\n{stdout}");
    // The per-file `determinism` rule cannot see this: `Instant` only
    // appears in mms-bench, where wall time is legal. The taint rule
    // flags the frame where the deterministic crate calls out.
    assert!(
        stdout.contains("crates/sim/src/clock.rs"),
        "finding lands on the deterministic frontier in:\n{stdout}"
    );
    assert!(
        stdout.contains("helper_now") && stdout.contains("Instant"),
        "chain names the laundering helper and the source in:\n{stdout}"
    );
}

#[test]
fn baseline_suppresses_old_findings_and_fails_only_new_ones() {
    let files_v1 = [(
        "crates/sim/src/simulator.rs",
        include_str!("fixtures/graph/baseline_v1.rs"),
    )];
    let root = graph_workspace("graph-baseline", &files_v1);
    let base = root.join("lint-baseline.txt");
    let base_str = base.to_str().expect("utf-8 tmpdir");
    let root_str = root.to_str().expect("utf-8 tmpdir");

    // Record the pre-existing finding.
    let out = run(&[
        "check",
        "--rule",
        "transitive-alloc",
        "--root",
        root_str,
        "--write-baseline",
        base_str,
    ]);
    assert_eq!(out.status.code(), Some(0), "--write-baseline exits 0");

    // Unchanged tree + baseline: clean.
    let out = run(&[
        "check",
        "--rule",
        "transitive-alloc",
        "--root",
        root_str,
        "--baseline",
        base_str,
    ]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert_eq!(
        out.status.code(),
        Some(0),
        "baselined finding is suppressed:\n{stdout}"
    );
    assert!(
        stdout.contains("baseline suppressed 1 of 1 finding(s)"),
        "suppression count in:\n{stdout}"
    );

    // Introduce a second allocating helper: only it fails the run.
    fs::write(
        root.join("crates/sim/src/simulator.rs"),
        include_str!("fixtures/graph/baseline_v2.rs"),
    )
    .expect("tmpdir is writable");
    let out = run(&[
        "check",
        "--rule",
        "transitive-alloc",
        "--root",
        root_str,
        "--baseline",
        base_str,
    ]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert_eq!(out.status.code(), Some(1), "new finding fails:\n{stdout}");
    assert!(
        stdout.contains("new_helper"),
        "new finding reported in:\n{stdout}"
    );
    assert!(
        !stdout.contains("old_helper`"),
        "old finding stays suppressed in:\n{stdout}"
    );
}

#[test]
fn unused_graph_allow_is_itself_a_finding() {
    // The allow names a graph rule but nothing it could suppress is on
    // that line, so hygiene (which runs after the graph phase) flags it.
    let root = graph_workspace(
        "graph-unused-allow",
        &[(
            "crates/sim/src/simulator.rs",
            "pub struct Simulator;\nimpl Simulator {\n    pub fn run_sessions(&mut self) -> usize {\n        // lint:allow(transitive-alloc): nothing here allocates\n        7\n    }\n}\n",
        )],
    );
    let (code, stdout) = check(&root, "transitive-alloc");
    assert_eq!(code, 1, "stale allow must fail:\n{stdout}");
    assert!(
        stdout.contains("unused `lint:allow(transitive-alloc)`"),
        "hygiene finding in:\n{stdout}"
    );
}
