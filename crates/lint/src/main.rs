//! CLI driver: `mms-lint check [--rule <name>] [--json] [--root <dir>]
//! [--baseline <file>] [--write-baseline <file>]`, `mms-lint graph
//! [--dot] [--roots] [--why <from> <to>]`, and `mms-lint rules`.

use mms_lint::graph::{render_chain, resolve_spec, CallGraph};
use mms_lint::{check_workspace, find_root, load_workspace, report, taint, RuleSet};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
mms-lint — static enforcement of the workspace's invariants

USAGE:
    mms-lint check [--rule <name>]... [--json] [--root <dir>]
                   [--baseline <file>] [--write-baseline <file>]
    mms-lint graph [--dot] [--roots] [--why <from> <to>] [--root <dir>]
    mms-lint rules

OPTIONS:
    --rule <name>      Run only the named rule (repeatable). Known rules:
                       determinism, hot-path-alloc, unsafe-pragma,
                       panic-policy, paper-refs, transitive-alloc,
                       determinism-taint, panic-reachability
    --json             Emit findings and coverage as JSON
    --root <dir>       Workspace root (default: nearest [workspace] above
                       the linter's own manifest, or the current directory)
    --baseline <file>  Suppress findings recorded in <file>; fail only on
                       new ones (line numbers ignored, so edits above a
                       baselined finding don't churn it)
    --write-baseline <file>
                       Write the current findings to <file> and exit 0

GRAPH:
    --dot              Export the workspace call graph as Graphviz DOT
    --roots            Hot-root coverage report: per registry entry, its
                       in/out degree and reachable-function count
    --why <from> <to>  Shortest call path from <from> to <to>; specs are
                       `name` or `Type::name`

EXIT STATUS:
    0  clean tree (or no new findings vs. the baseline)
    1  findings
    2  usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "rules" => {
            for r in mms_lint::rules::RULE_NAMES {
                println!("{r}");
            }
            ExitCode::SUCCESS
        }
        "check" => run_check(&args[1..]),
        "graph" => run_graph(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut rules: Vec<String> = Vec::new();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rule" => match it.next() {
                Some(r) => rules.push(r.clone()),
                None => return usage_err("--rule needs a value"),
            },
            "--json" => json = true,
            "--root" => match it.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage_err("--root needs a value"),
            },
            "--baseline" => match it.next() {
                Some(r) => baseline = Some(PathBuf::from(r)),
                None => return usage_err("--baseline needs a value"),
            },
            "--write-baseline" => match it.next() {
                Some(r) => write_baseline = Some(PathBuf::from(r)),
                None => return usage_err("--write-baseline needs a value"),
            },
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
    }
    let set = if rules.is_empty() {
        RuleSet::all()
    } else {
        match RuleSet::only(&rules) {
            Ok(s) => s,
            Err(e) => return usage_err(&e),
        }
    };
    let root = root.or_else(default_root);
    let Some(root) = root else {
        return usage_err("could not locate the workspace root; pass --root");
    };
    match check_workspace(&root, &set) {
        Ok(mut rep) => {
            if let Some(path) = write_baseline {
                let text = report::render_baseline(&rep.findings);
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("mms-lint: write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                println!(
                    "mms-lint: wrote baseline with {} finding(s) to {}",
                    rep.findings.len(),
                    path.display()
                );
                return ExitCode::SUCCESS;
            }
            if let Some(path) = baseline {
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("mms-lint: read {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                };
                let known = report::parse_baseline(&text);
                let before = rep.findings.len();
                rep.findings
                    .retain(|f| !known.contains(&report::baseline_key(f)));
                if !json {
                    println!(
                        "mms-lint: baseline suppressed {} of {before} finding(s)",
                        before - rep.findings.len()
                    );
                }
            }
            if json {
                print!("{}", rep.render_json());
            } else {
                print!("{}", rep.render_text(true));
            }
            if rep.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mms-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_graph(args: &[String]) -> ExitCode {
    let mut dot = false;
    let mut roots_report = false;
    let mut why: Option<(String, String)> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dot" => dot = true,
            "--roots" => roots_report = true,
            "--why" => match (it.next(), it.next()) {
                (Some(f), Some(t)) => why = Some((f.clone(), t.clone())),
                _ => return usage_err("--why needs <from> and <to>"),
            },
            "--root" => match it.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage_err("--root needs a value"),
            },
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
    }
    if !dot && !roots_report && why.is_none() {
        return usage_err("graph needs one of --dot, --roots, --why");
    }
    let root = root.or_else(default_root);
    let Some(root) = root else {
        return usage_err("could not locate the workspace root; pass --root");
    };
    let ws = match load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("mms-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let g = CallGraph::build(&ws);
    if dot {
        print!("{}", g.render_dot(&ws));
    }
    if let Some((from, to)) = why {
        let sources = resolve_spec(&ws, &from);
        let targets = resolve_spec(&ws, &to);
        if sources.is_empty() {
            eprintln!("mms-lint: no function matches `{from}`");
            return ExitCode::from(2);
        }
        if targets.is_empty() {
            eprintln!("mms-lint: no function matches `{to}`");
            return ExitCode::from(2);
        }
        let pred = g.reach(&sources, &|_| false);
        let hit = targets.iter().find(|&&t| pred[t].is_some());
        match hit {
            Some(&t) => {
                let chain = g.chain_to(&pred, t);
                let start = chain.first().map_or(t, |e| e.from);
                println!("{}", render_chain(&ws, start, &chain));
                println!("({} call(s) deep)", chain.len());
            }
            None => {
                println!("no call path from `{from}` to `{to}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if roots_report {
        let roots = taint::resolve_roots(&ws);
        let root_fns: Vec<usize> = roots.iter().map(|&(_, fi)| fi).collect();
        println!(
            "hot-root coverage: {}/{} registry entries resolved",
            roots.len(),
            mms_lint::rules::HOT_FNS.len()
        );
        let mut covered = vec![false; ws.fns.len()];
        for &(ri, fi) in &roots {
            let reg = &mms_lint::rules::HOT_FNS[ri];
            let pred = g.reach(&[fi], &|_| false);
            let reach = pred.iter().filter(|p| p.is_some()).count() - 1;
            for (i, p) in pred.iter().enumerate() {
                if p.is_some() {
                    covered[i] = true;
                }
            }
            println!(
                "  {:<40} in={:<3} out={:<3} reaches={:<4} {}",
                ws.fns[fi].qualified(),
                g.in_degree[fi],
                g.out[fi].len(),
                reach,
                reg.why
            );
        }
        let total: usize = ws.fns.iter().filter(|f| !f.is_test).count();
        let cov = covered
            .iter()
            .zip(&ws.fns)
            .filter(|(c, f)| **c && !f.is_test)
            .count();
        println!(
            "covered: {cov}/{total} production functions reachable from the {} root(s)",
            root_fns.len()
        );
    }
    ExitCode::SUCCESS
}

/// Root discovery: prefer the workspace above this crate's manifest
/// (correct under `cargo run -p mms-lint` from anywhere inside the
/// repo), falling back to the current directory's enclosing workspace.
fn default_root() -> Option<PathBuf> {
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    find_root(&compiled).or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d)))
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("mms-lint: {msg}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
