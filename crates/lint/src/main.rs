//! CLI driver: `mms-lint check [--rule <name>] [--json] [--root <dir>]`
//! and `mms-lint rules`.

use mms_lint::{check_workspace, find_root, RuleSet};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
mms-lint — static enforcement of the workspace's invariants

USAGE:
    mms-lint check [--rule <name>]... [--json] [--root <dir>]
    mms-lint rules

OPTIONS:
    --rule <name>   Run only the named rule (repeatable). Known rules:
                    determinism, hot-path-alloc, unsafe-pragma,
                    panic-policy, paper-refs
    --json          Emit findings and coverage as JSON
    --root <dir>    Workspace root (default: nearest [workspace] above
                    the linter's own manifest, or the current directory)

EXIT STATUS:
    0  clean tree
    1  findings
    2  usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "rules" => {
            for r in mms_lint::rules::RULE_NAMES {
                println!("{r}");
            }
            ExitCode::SUCCESS
        }
        "check" => run_check(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(args: &[String]) -> ExitCode {
    let mut rules: Vec<String> = Vec::new();
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rule" => match it.next() {
                Some(r) => rules.push(r.clone()),
                None => return usage_err("--rule needs a value"),
            },
            "--json" => json = true,
            "--root" => match it.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage_err("--root needs a value"),
            },
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
    }
    let set = if rules.is_empty() {
        RuleSet::all()
    } else {
        match RuleSet::only(&rules) {
            Ok(s) => s,
            Err(e) => return usage_err(&e),
        }
    };
    let root = root.or_else(default_root);
    let Some(root) = root else {
        return usage_err("could not locate the workspace root; pass --root");
    };
    match check_workspace(&root, &set) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text(true));
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mms-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Root discovery: prefer the workspace above this crate's manifest
/// (correct under `cargo run -p mms-lint` from anywhere inside the
/// repo), falling back to the current directory's enclosing workspace.
fn default_root() -> Option<PathBuf> {
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    find_root(&compiled).or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d)))
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("mms-lint: {msg}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
