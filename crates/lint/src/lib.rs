//! # mms-lint — static enforcement of the workspace's invariants
//!
//! PRs 1–4 established three load-bearing guarantees: bit-identical
//! output at any thread count, a zero-allocation data path, and
//! scheduler behavior pinned to the paper's equations. Each was
//! enforced only by runtime tests that a refactor could silently route
//! around. This crate is the static layer: a comment- and
//! string-literal-aware token scanner ([`scan`]), a structural model of
//! each file ([`model`]), a workspace-wide symbol table ([`symbols`])
//! with a conservative call graph ([`graph`]), and eight rules
//! ([`rules`], [`taint`]) that fail CI the moment a diff violates an
//! invariant.
//!
//! ## Per-file rules
//!
//! * `determinism` — no `Instant`/`SystemTime`/`HashMap`/`HashSet`/
//!   ambient randomness in the deterministic crates' library code.
//! * `hot-path-alloc` — the registered hot *roots* (the simulation
//!   step, the XOR kernels, the fleet/control-plane steps) must not
//!   contain `Vec::new`/`vec!`/`.to_vec()`/`Box::new`/`format!`/
//!   `.collect()`/`.clone()`.
//! * `unsafe-pragma` — every first-party crate root carries
//!   `#![forbid(unsafe_code)]`.
//! * `panic-policy` — `.unwrap()`/`.expect(…)`/`panic!` in non-test
//!   library code must state the invariant they rely on.
//! * `paper-refs` — comment citations must exist in the paper
//!   (Eqs 1–19, Figures 1–9, Tables 1–3), and every equation's
//!   registered implementing item must still exist and cite it.
//!
//! ## Interprocedural rules
//!
//! These run on the call graph, so a finding names the whole chain:
//!
//! * `transitive-alloc` — every function *reachable* from a hot root
//!   must be allocation-free, at any call depth. The registry holds
//!   only true roots; interior and dead entries are themselves
//!   findings.
//! * `determinism-taint` — nondeterminism sources taint callers
//!   transitively, so wall-clock reads laundered through a helper in a
//!   non-deterministic crate are caught at the frame where a
//!   deterministic crate calls out.
//! * `panic-reachability` — panic sites outside `panic-policy`'s
//!   per-file jurisdiction (bins, integration tests, examples) must
//!   state invariants when a hot root reaches them.
//!
//! ## Escape hatch
//!
//! A finding can be suppressed in place:
//!
//! ```text
//! // lint:allow(determinism): pool diagnostics are trace-only wall time
//! let started = trace_pool.then(std::time::Instant::now);
//! ```
//!
//! The annotation names one or more rules, requires a reason after the
//! colon, and applies to its own line or the next line carrying code.
//! For the graph rules the placement is semantic: on a *call-site* line
//! the allow cuts that edge (suppressing only chains through that
//! frame); on the *fact* line it clears the fact for all chains. An
//! annotation that suppresses nothing is itself an error, so stale
//! allows cannot accumulate.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p mms-lint -- check [--rule <name>] [--json] [--root <dir>]
//!                                [--baseline <file>] [--write-baseline <file>]
//! cargo run -p mms-lint -- graph [--dot] [--roots] [--why <from> <to>]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod model;
pub mod report;
pub mod rules;
pub mod scan;
pub mod symbols;
pub mod taint;

use model::FileModel;
use report::{EqCoverage, Finding, Report};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Which rules a run enforces.
#[derive(Debug, Clone)]
pub struct RuleSet {
    active: Vec<String>,
}

impl RuleSet {
    /// All eight rules.
    #[must_use]
    pub fn all() -> RuleSet {
        RuleSet {
            active: rules::RULE_NAMES.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Only the named rules; errors on an unknown name.
    pub fn only(names: &[String]) -> Result<RuleSet, String> {
        for n in names {
            if !rules::RULE_NAMES.contains(&n.as_str()) {
                return Err(format!(
                    "unknown rule `{n}` (known: {})",
                    rules::RULE_NAMES.join(", ")
                ));
            }
        }
        Ok(RuleSet {
            active: names.to_vec(),
        })
    }

    /// Whether `rule` is enforced by this run.
    #[must_use]
    pub fn is_active(&self, rule: &str) -> bool {
        self.active.iter().any(|r| r == rule)
    }

    /// Whether any interprocedural rule is enforced by this run.
    #[must_use]
    pub fn any_graph_rule(&self) -> bool {
        rules::GRAPH_RULES.iter().any(|r| self.is_active(r))
    }
}

/// Per-file lint outcome: findings after annotation filtering, plus the
/// equation citations the file carries (for workspace coverage).
pub struct FileOutcome {
    /// Surviving findings.
    pub findings: Vec<Finding>,
    /// Equation numbers cited in this file's comments.
    pub eq_cited: Vec<u32>,
    /// Which hot-registry entries this file matched.
    pub hot_matched: Vec<bool>,
}

/// Run the per-file rules over one model, suppressing findings via
/// allows (and marking them used). No hygiene — that runs once the
/// graph rules have had their chance to use allows too.
fn file_rules(m: &FileModel, set: &RuleSet, hot_matched: &mut [bool]) -> (Vec<Finding>, Vec<u32>) {
    let mut raw: Vec<Finding> = Vec::new();
    let mut eq_cited = Vec::new();
    if set.is_active("determinism") {
        raw.extend(rules::determinism(m));
    }
    if set.is_active("hot-path-alloc") {
        raw.extend(rules::hot_path_alloc(m, hot_matched));
    }
    if set.is_active("unsafe-pragma") {
        raw.extend(rules::unsafe_pragma(m));
    }
    if set.is_active("panic-policy") {
        raw.extend(rules::panic_policy(m));
    }
    if set.is_active("paper-refs") {
        let (f, eqs) = rules::paper_refs(m);
        raw.extend(f);
        eq_cited.extend(eqs.iter().map(|c| c.num));
    }
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for a in m.allows_for(&f.rule, f.line) {
            if a.has_reason {
                a.used.set(true);
                suppressed = true;
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }
    (findings, eq_cited)
}

/// Annotation hygiene for one model: unknown rules, missing reasons,
/// unused allows. When `graph_ran` is false (per-file-only linting, as
/// in [`lint_source`]), allows naming a graph rule are exempt from the
/// unused check — nothing could have marked them.
fn hygiene(m: &FileModel, set: &RuleSet, graph_ran: bool, out: &mut Vec<Finding>) {
    for a in &m.allows {
        for r in &a.rules {
            if !rules::RULE_NAMES.contains(&r.as_str()) {
                out.push(Finding {
                    rule: "lint-allow".into(),
                    file: m.path.clone(),
                    line: a.line,
                    message: format!(
                        "`lint:allow({r})` names an unknown rule (known: {})",
                        rules::RULE_NAMES.join(", ")
                    ),
                });
            }
        }
        let relevant = a.rules.iter().any(|r| set.is_active(r));
        if !relevant {
            continue;
        }
        if !a.has_reason {
            out.push(Finding {
                rule: "lint-allow".into(),
                file: m.path.clone(),
                line: a.line,
                message: "`lint:allow(…)` requires a reason: `// lint:allow(<rule>): <why>`".into(),
            });
        } else if !a.used.get() {
            let names_graph_rule = a
                .rules
                .iter()
                .any(|r| rules::GRAPH_RULES.contains(&r.as_str()));
            if names_graph_rule && !graph_ran {
                continue;
            }
            out.push(Finding {
                rule: "lint-allow".into(),
                file: m.path.clone(),
                line: a.line,
                message: format!(
                    "unused `lint:allow({})`: nothing on line {} violates it — remove the annotation",
                    a.rules.join(", "),
                    a.target_line
                ),
            });
        }
    }
}

/// Lint a single source text as if it lived at workspace-relative
/// `path`. This is the per-file core used by fixture tests; the
/// interprocedural rules need the whole workspace and only run in
/// [`check_workspace`].
#[must_use]
pub fn lint_source(path: &str, src: &str, set: &RuleSet) -> FileOutcome {
    let m = FileModel::build(path, src);
    let mut hot_matched = vec![false; rules::HOT_FNS.len()];
    let (mut findings, eq_cited) = file_rules(&m, set, &mut hot_matched);
    hygiene(&m, set, false, &mut findings);
    FileOutcome {
        findings,
        eq_cited,
        hot_matched,
    }
}

/// Source files the linter walks: first-party Rust under these roots.
const WALK_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Paths never linted: vendored third-party subsets, build output, and
/// the linter's own known-bad fixture corpus.
fn excluded(rel: &str) -> bool {
    rel.starts_with("vendor/") || rel.starts_with("target/") || rel.contains("/fixtures/")
}

/// Recursively collect the workspace's first-party `.rs` files, sorted
/// for deterministic output.
fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in WALK_ROOTS {
        walk(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            walk(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// Load the workspace rooted at `root` into a symbol table (reading and
/// modeling every first-party file). Shared by [`check_workspace`] and
/// the `graph` subcommand.
pub fn load_workspace(root: &Path) -> Result<symbols::Workspace, String> {
    let files = collect_files(root);
    let mut paths = Vec::new();
    let mut models = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| "path escaped root".to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        if excluded(&rel) {
            continue;
        }
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        models.push(FileModel::build(&rel, &src));
        paths.push(rel);
    }
    if models.is_empty() {
        return Err(format!(
            "no source files found under {} — wrong --root?",
            root.display()
        ));
    }
    Ok(symbols::Workspace::build(root, paths, models))
}

/// Run the active rules over the workspace rooted at `root`.
///
/// Phases: per-file rules (allow-filtered), the interprocedural rules
/// over the call graph (edge-cut and fact-clear allows applied), then
/// annotation hygiene and the registry cross-checks — every
/// hot-function entry must match a function somewhere (a rename would
/// otherwise silently drop protection), and every equation's
/// implementing item must exist and be cited in its registered file.
pub fn check_workspace(root: &Path, set: &RuleSet) -> Result<Report, String> {
    let ws = load_workspace(root)?;
    let mut report = Report {
        files_checked: ws.files.len(),
        ..Report::default()
    };
    let mut hot_matched = vec![false; rules::HOT_FNS.len()];
    let mut eqs_by_file: BTreeMap<String, Vec<u32>> = BTreeMap::new();

    for m in &ws.files {
        let (findings, eq_cited) = file_rules(m, set, &mut hot_matched);
        report.findings.extend(findings);
        if set.is_active("paper-refs") {
            eqs_by_file
                .entry(m.path.clone())
                .or_default()
                .extend(eq_cited);
        }
    }

    let graph_ran = set.any_graph_rule();
    if graph_ran {
        let g = graph::CallGraph::build(&ws);
        let roots = taint::resolve_roots(&ws);
        if set.is_active("transitive-alloc") {
            report
                .findings
                .extend(taint::transitive_alloc(&ws, &g, &roots));
        }
        if set.is_active("determinism-taint") {
            report.findings.extend(taint::determinism_taint(&ws, &g));
        }
        if set.is_active("panic-reachability") {
            report
                .findings
                .extend(taint::panic_reachability(&ws, &g, &roots));
        }
    }

    for m in &ws.files {
        hygiene(m, set, graph_ran, &mut report.findings);
    }

    if set.is_active("hot-path-alloc") {
        for (i, reg) in rules::HOT_FNS.iter().enumerate() {
            if !hot_matched[i] {
                let qual = reg
                    .impl_type
                    .map(|t| format!("{t}::{}", reg.name))
                    .unwrap_or_else(|| reg.name.to_string());
                report.findings.push(Finding {
                    rule: "hot-path-alloc".into(),
                    file: reg.file.into(),
                    line: 1,
                    message: format!(
                        "hot-path registry entry `{qual}` not found — renamed or moved? update the registry in crates/lint/src/rules.rs"
                    ),
                });
            }
        }
    }

    if set.is_active("paper-refs") {
        for e in rules::EQ_REGISTRY {
            let cited = eqs_by_file
                .iter()
                .any(|(f, eqs)| f.ends_with(e.file) && eqs.contains(&e.eq));
            let present = ws
                .paths
                .iter()
                .zip(&ws.files)
                .filter(|(p, _)| p.ends_with(e.file))
                .any(|(_, m)| m.toks.iter().any(|t| t.text.contains(e.item)));
            if !present {
                report.findings.push(Finding {
                    rule: "paper-refs".into(),
                    file: e.file.into(),
                    line: 1,
                    message: format!(
                        "registered implementing item `{}` for Eq. {} not found — renamed? update the registry in crates/lint/src/rules.rs",
                        e.item, e.eq
                    ),
                });
            }
            if !cited {
                report.findings.push(Finding {
                    rule: "paper-refs".into(),
                    file: e.file.into(),
                    line: 1,
                    message: format!(
                        "Eq. {} ({}) is no longer cited in this file — restore the doc citation on `{}`",
                        e.eq, e.what, e.item
                    ),
                });
            }
            report.coverage.push(EqCoverage {
                eq: e.eq,
                item: e.item.to_string(),
                file: e.file.to_string(),
                what: e.what.to_string(),
                cited,
            });
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Locate the workspace root: walk up from `start` until a `Cargo.toml`
/// containing `[workspace]` is found.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(d) = cur {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        cur = d.parent();
    }
    None
}
