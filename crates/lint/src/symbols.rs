//! Workspace-wide symbol table: every function item of every
//! first-party file, qualified by crate, module, and enclosing `impl`
//! type, plus the crate dependency closure used to filter call-graph
//! candidates to edges the compiler could actually produce.
//!
//! The table is the substrate the interprocedural rules build on: the
//! per-file [`FileModel`]s stay alive here so cross-file analyses
//! (call chains, `lint:allow` frames on interior calls) can resolve
//! any `(file, line)` back to its annotations.

use crate::model::FileModel;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One function item in the workspace.
#[derive(Debug)]
pub struct FnSym {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type, when the function is a method.
    pub impl_type: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Whether the function lives in test-only code.
    pub is_test: bool,
    /// Whether the function is `pub` (any visibility restriction).
    pub is_pub: bool,
    /// Token range of the body in the owning file, or `None` for
    /// bodyless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Crate directory name (`crates/<name>/…`), or `""` for the root
    /// package (`src/`, `tests/`, `examples/`).
    pub krate: String,
    /// Display module path derived from the file path
    /// (`crates/sim/src/workload.rs` → `sim::workload`).
    pub module: String,
}

impl FnSym {
    /// `Type::name` or bare `name` for display.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace symbol table.
pub struct Workspace {
    /// Workspace-relative paths, parallel to `files`.
    pub paths: Vec<String>,
    /// All scanned file models (kept for allow-frame resolution).
    pub files: Vec<FileModel>,
    /// All function items, in (file, declaration) order.
    pub fns: Vec<FnSym>,
    /// Crate directory name → transitive dependency closure (crate
    /// directory names, self included). Crates without a parsed
    /// manifest get the permissive full closure.
    pub deps: BTreeMap<String, BTreeSet<String>>,
    /// All crate directory names seen (plus `""` for the root package).
    pub crates: BTreeSet<String>,
}

/// The crate directory name of a workspace path (`""` for the root
/// package's own `src`/`tests`/`examples` trees).
#[must_use]
pub fn crate_dir(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
        .to_string()
}

/// Display module path of a file: crate dir plus the source path with
/// `src/`, separators, and the `.rs` suffix folded away.
fn module_of(path: &str) -> String {
    let krate = crate_dir(path);
    let tail = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs");
    let tail = match tail {
        "lib" | "main" | "mod" => String::new(),
        other => format!("::{other}"),
    };
    if krate.is_empty() {
        format!("root{tail}")
    } else {
        format!("{krate}{tail}")
    }
}

impl Workspace {
    /// Build the symbol table from pre-scanned file models. `root` is
    /// the workspace directory, used to read `crates/*/Cargo.toml` for
    /// the dependency closure (missing manifests degrade gracefully to
    /// the permissive closure).
    #[must_use]
    pub fn build(root: &Path, paths: Vec<String>, files: Vec<FileModel>) -> Workspace {
        let mut fns = Vec::new();
        let mut crates = BTreeSet::new();
        for (fi, model) in files.iter().enumerate() {
            let krate = crate_dir(&model.path);
            crates.insert(krate.clone());
            let module = module_of(&model.path);
            for f in &model.fns {
                if f.name.is_empty() {
                    continue;
                }
                fns.push(FnSym {
                    file: fi,
                    name: f.name.clone(),
                    impl_type: f.impl_type.clone(),
                    line: f.line,
                    is_test: f.is_test,
                    is_pub: f.is_pub,
                    body: f.body,
                    krate: krate.clone(),
                    module: module.clone(),
                });
            }
        }
        let deps = dep_closure(root, &crates);
        Workspace {
            paths,
            files,
            fns,
            deps,
            crates,
        }
    }

    /// Whether crate `from` may call into crate `to` (same crate, a
    /// transitive dependency, or an unknown crate treated permissively).
    #[must_use]
    pub fn may_depend(&self, from: &str, to: &str) -> bool {
        if from == to || from.is_empty() {
            // The root package depends on the whole workspace.
            return true;
        }
        match self.deps.get(from) {
            Some(closure) => closure.contains(to),
            None => true,
        }
    }

    /// Indices of the functions matching `name`, optionally restricted
    /// to an impl type (`Some(ty)`), free functions (`None` with
    /// `free_only`), or any.
    pub fn named(&self, name: &str) -> impl Iterator<Item = usize> + '_ {
        let name = name.to_string();
        (0..self.fns.len()).filter(move |&i| self.fns[i].name == name)
    }
}

/// Compute each crate's transitive dependency closure by reading the
/// workspace manifests. Mapping is by crate *directory* name; package
/// names (`mms-sim`) are resolved from each manifest's `name =` line.
fn dep_closure(root: &Path, crates: &BTreeSet<String>) -> BTreeMap<String, BTreeSet<String>> {
    // dir -> (package name, manifest text)
    let mut manifests: BTreeMap<String, (String, String)> = BTreeMap::new();
    for dir in crates {
        if dir.is_empty() {
            continue;
        }
        let path = root.join("crates").join(dir).join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let pkg = text
            .lines()
            .find_map(|l| {
                let l = l.trim();
                let rest = l.strip_prefix("name")?.trim_start();
                let rest = rest.strip_prefix('=')?.trim_start();
                let rest = rest.strip_prefix('"')?;
                rest.split('"').next()
            })
            .unwrap_or(dir)
            .to_string();
        manifests.insert(dir.clone(), (pkg, text));
    }
    // Direct edges: dir -> set of dirs whose package name appears in
    // the manifest (dependency tables only mention package names; a
    // textual match is conservative in the right direction).
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (dir, (_, text)) in &manifests {
        let mut set = BTreeSet::new();
        for (other, (pkg, _)) in &manifests {
            if other != dir && text.contains(pkg.as_str()) {
                set.insert(other.clone());
            }
        }
        direct.insert(dir.clone(), set);
    }
    // Transitive closure via worklist.
    let mut closure: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for dir in manifests.keys() {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack: Vec<String> = vec![dir.clone()];
        while let Some(d) = stack.pop() {
            if !seen.insert(d.clone()) {
                continue;
            }
            if let Some(next) = direct.get(&d) {
                for n in next {
                    if !seen.contains(n) {
                        stack.push(n.clone());
                    }
                }
            }
        }
        closure.insert(dir.clone(), seen);
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_dir_and_module_display() {
        assert_eq!(crate_dir("crates/sim/src/workload.rs"), "sim");
        assert_eq!(crate_dir("src/lib.rs"), "");
        assert_eq!(module_of("crates/sim/src/workload.rs"), "sim::workload");
        assert_eq!(module_of("crates/sim/src/lib.rs"), "sim");
        assert_eq!(module_of("src/lib.rs"), "root");
    }

    #[test]
    fn symbol_table_collects_fns_with_qualifiers() {
        let m = FileModel::build(
            "crates/sim/src/simulator.rs",
            "impl Simulator { pub fn step(&mut self) {} }\nfn helper() {}\n",
        );
        let ws = Workspace::build(
            Path::new("/nonexistent"),
            vec!["crates/sim/src/simulator.rs".into()],
            vec![m],
        );
        assert_eq!(ws.fns.len(), 2);
        assert_eq!(ws.fns[0].qualified(), "Simulator::step");
        assert!(ws.fns[0].is_pub);
        assert_eq!(ws.fns[0].krate, "sim");
        assert!(!ws.fns[1].is_pub);
        // No manifests on disk: permissive dependency answers.
        assert!(ws.may_depend("sim", "sched"));
    }
}
