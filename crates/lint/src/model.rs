//! Structural model of one source file: function boundaries (with the
//! enclosing `impl` type), `#[cfg(test)]` / `mod tests` regions, and
//! `// lint:allow(…)` annotations.

use crate::scan::{scan, Kind, Tok};
use std::cell::Cell;

/// A function found in the file.
#[derive(Debug)]
pub struct FnSpan {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` type, when the function is a method.
    pub impl_type: Option<String>,
    /// Token-index range of the body, inclusive of both braces. `None`
    /// for bodyless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Whether the function lives in test-only code.
    pub is_test: bool,
    /// Whether the function carries a `pub` qualifier (any visibility
    /// restriction — `pub(crate)`, `pub(super)` — still counts: the
    /// item is an entry point beyond its own module).
    pub is_pub: bool,
}

/// One `// lint:allow(<rules>): <reason>` annotation.
#[derive(Debug)]
pub struct Allow {
    /// Rules this annotation suppresses.
    pub rules: Vec<String>,
    /// Whether a non-empty reason followed the rule list.
    pub has_reason: bool,
    /// Line the annotation is written on.
    pub line: u32,
    /// Line whose findings it suppresses (its own line when trailing a
    /// statement, otherwise the next line carrying code).
    pub target_line: u32,
    /// Set when the annotation suppressed at least one finding.
    pub used: Cell<bool>,
}

/// A fully scanned and structurally annotated source file.
pub struct FileModel {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Token stream (comments included).
    pub toks: Vec<Tok>,
    /// Per-token flag: true inside `#[cfg(test)]` items or `mod tests`.
    pub in_test: Vec<bool>,
    /// Functions found in the file.
    pub fns: Vec<FnSpan>,
    /// `lint:allow` annotations found in comments.
    pub allows: Vec<Allow>,
}

impl FileModel {
    /// Scan and model `src`, which lives at workspace-relative `path`.
    #[must_use]
    pub fn build(path: &str, src: &str) -> FileModel {
        let toks = scan(src);
        let in_test = mark_test_regions(&toks);
        let fns = find_fns(&toks, &in_test);
        let allows = find_allows(&toks);
        FileModel {
            path: path.replace('\\', "/"),
            toks,
            in_test,
            fns,
            allows,
        }
    }

    /// Whether any non-comment token on `line` is inside test code.
    /// Lines with no code tokens report false.
    #[must_use]
    pub fn line_in_test(&self, line: u32) -> bool {
        self.toks
            .iter()
            .zip(&self.in_test)
            .any(|(t, &it)| t.line == line && !t.is_comment() && it)
    }

    /// The allows whose target line is `line` and that name `rule`.
    pub fn allows_for<'a>(
        &'a self,
        rule: &'a str,
        line: u32,
    ) -> impl Iterator<Item = &'a Allow> + 'a {
        self.allows
            .iter()
            .filter(move |a| a.target_line == line && a.rules.iter().any(|r| r == rule))
    }
}

/// Indices of non-comment tokens.
fn code_indices(toks: &[Tok]) -> Vec<usize> {
    (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect()
}

fn is_punct(t: &Tok, c: &str) -> bool {
    t.kind == Kind::Punct && t.text == c
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == Kind::Ident && t.text == s
}

/// Walk an attribute starting at `code[k]` (which is `#`). Returns
/// (index in `code` one past the closing `]`, idents seen inside,
/// whether it was an inner `#![…]` attribute).
fn parse_attr(toks: &[Tok], code: &[usize], k: usize) -> (usize, Vec<String>, bool) {
    let mut j = k + 1;
    let mut inner = false;
    if j < code.len() && is_punct(&toks[code[j]], "!") {
        inner = true;
        j += 1;
    }
    let mut idents = Vec::new();
    if j >= code.len() || !is_punct(&toks[code[j]], "[") {
        return (k + 1, idents, inner);
    }
    let mut depth = 0usize;
    while j < code.len() {
        let t = &toks[code[j]];
        if is_punct(t, "[") {
            depth += 1;
        } else if is_punct(t, "]") {
            depth -= 1;
            if depth == 0 {
                return (j + 1, idents, inner);
            }
        } else if t.kind == Kind::Ident {
            idents.push(t.text.clone());
        }
        j += 1;
    }
    (j, idents, inner)
}

/// From `code[k]` (the first token of an item header), find the index
/// in `code` one past the item: past the matching `}` of its first
/// brace block, or past a `;` that arrives first.
fn skip_item(toks: &[Tok], code: &[usize], k: usize) -> (usize, Option<(usize, usize)>) {
    let mut j = k;
    while j < code.len() {
        let t = &toks[code[j]];
        if is_punct(t, ";") {
            return (j + 1, None);
        }
        if is_punct(t, "{") {
            let close = match_brace(toks, code, j);
            return (close + 1, Some((code[j], code[close.min(code.len() - 1)])));
        }
        j += 1;
    }
    (j, None)
}

/// Index in `code` of the `}` matching the `{` at `code[open]`.
fn match_brace(toks: &[Tok], code: &[usize], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < code.len() {
        let t = &toks[code[j]];
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    code.len() - 1
}

/// Mark every token inside `#[cfg(test)]` items, `#[test]` functions,
/// and `mod tests` blocks.
fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let code = code_indices(toks);
    let mut k = 0usize;
    let mut pending_test = false;
    while k < code.len() {
        let t = &toks[code[k]];
        if is_punct(t, "#") {
            let (next, idents, inner) = parse_attr(toks, &code, k);
            if !inner {
                let has_test = idents.iter().any(|s| s == "test");
                // `cfg(not(test))` guards *production* code.
                let negated = idents.iter().any(|s| s == "not");
                if has_test && !negated {
                    pending_test = true;
                }
            }
            k = next;
            continue;
        }
        let mod_tests = is_ident(t, "mod")
            && code
                .get(k + 1)
                .is_some_and(|&i| is_ident(&toks[i], "tests"));
        if pending_test || mod_tests {
            let (next, span) = skip_item(toks, &code, k);
            let lo = code[k];
            let hi = span.map_or_else(|| code[next.min(code.len() - 1)], |(_, h)| h);
            for flag in in_test.iter_mut().take(hi + 1).skip(lo) {
                *flag = true;
            }
            pending_test = false;
            k = next;
            continue;
        }
        k += 1;
    }
    in_test
}

/// Skip a generic parameter list starting at `code[j]` (which is `<`),
/// tolerating `->` arrows inside `Fn() -> T` bounds.
fn skip_generics(toks: &[Tok], code: &[usize], j: usize) -> usize {
    let mut depth = 0usize;
    let mut k = j;
    while k < code.len() {
        let t = &toks[code[k]];
        if is_punct(t, "<") {
            depth += 1;
        } else if is_punct(t, "-") && code.get(k + 1).is_some_and(|&i| is_punct(&toks[i], ">")) {
            k += 2; // `->` inside a bound: the `>` is not a closer
            continue;
        } else if is_punct(t, ">") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// Find every `fn`, its body extent, and its enclosing impl type.
fn find_fns(toks: &[Tok], in_test: &[bool]) -> Vec<FnSpan> {
    let code = code_indices(toks);
    let mut fns = Vec::new();
    let mut impl_stack: Vec<(usize, String)> = Vec::new(); // (brace depth, type)
    let mut pending_impl: Option<String> = None;
    let mut depth = 0usize;
    let mut k = 0usize;
    while k < code.len() {
        let t = &toks[code[k]];
        if is_punct(t, "{") {
            depth += 1;
            if let Some(ty) = pending_impl.take() {
                impl_stack.push((depth, ty));
            }
            k += 1;
            continue;
        }
        if is_punct(t, "}") {
            if impl_stack.last().is_some_and(|&(d, _)| d == depth) {
                impl_stack.pop();
            }
            depth = depth.saturating_sub(1);
            k += 1;
            continue;
        }
        if is_ident(t, "impl") {
            // Header: `impl <generics>? Path (for Path)? … {`
            let mut j = k + 1;
            if code.get(j).is_some_and(|&i| is_punct(&toks[i], "<")) {
                j = skip_generics(toks, &code, j);
            }
            let mut last_ident: Option<String> = None;
            let mut after_for: Option<String> = None;
            let mut saw_for = false;
            while j < code.len() {
                let tj = &toks[code[j]];
                if is_punct(tj, "{") || is_punct(tj, ";") {
                    break;
                }
                if is_ident(tj, "for") {
                    saw_for = true;
                } else if is_ident(tj, "where") {
                    break;
                } else if tj.kind == Kind::Ident {
                    // Keep only the final segment of a `path::To::Type`.
                    let mid_path = code.get(j + 1).is_some_and(|&i| is_punct(&toks[i], ":"));
                    if !mid_path {
                        if saw_for {
                            after_for = Some(tj.text.clone());
                        } else {
                            last_ident = Some(tj.text.clone());
                        }
                    }
                } else if is_punct(tj, "<") {
                    j = skip_generics(toks, &code, j);
                    continue;
                }
                j += 1;
            }
            pending_impl = after_for.or(last_ident);
            k = j;
            continue;
        }
        if is_ident(t, "fn") {
            let name = code
                .get(k + 1)
                .map(|&i| toks[i].text.clone())
                .unwrap_or_default();
            let line = t.line;
            let is_test = in_test[code[k]];
            // Look back over the qualifier run (`pub (crate) const async
            // unsafe extern "C"`) for a `pub`; stop at tokens that end
            // the previous item.
            let mut is_pub = false;
            let mut back = k;
            while back > 0 {
                back -= 1;
                let tb = &toks[code[back]];
                if is_ident(tb, "pub") {
                    is_pub = true;
                    break;
                }
                let qualifier = matches!(tb.kind, Kind::Ident | Kind::Str)
                    || is_punct(tb, "(")
                    || is_punct(tb, ")");
                if !qualifier || k - back > 6 {
                    break;
                }
            }
            // Find the body `{` (or `;` for bodyless declarations),
            // skipping generic lists so `>` closers can't confuse us.
            let mut j = k + 2;
            let mut body = None;
            while j < code.len() {
                let tj = &toks[code[j]];
                if is_punct(tj, "<") {
                    j = skip_generics(toks, &code, j);
                    continue;
                }
                if is_punct(tj, ";") {
                    break;
                }
                if is_punct(tj, "{") {
                    let close = match_brace(toks, &code, j);
                    body = Some((code[j], code[close]));
                    break;
                }
                j += 1;
            }
            fns.push(FnSpan {
                name,
                impl_type: impl_stack.last().map(|(_, ty)| ty.clone()),
                body,
                line,
                is_test,
                is_pub,
            });
            // Continue *into* the body so nested items keep depth honest.
            k += 1;
            continue;
        }
        k += 1;
    }
    fns
}

/// Parse `lint:allow` annotations out of line comments.
fn find_allows(toks: &[Tok]) -> Vec<Allow> {
    // Lines that carry at least one code token, for target resolution.
    let mut code_lines: Vec<u32> = toks
        .iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.line)
        .collect();
    code_lines.sort_unstable();
    code_lines.dedup();

    let mut allows = Vec::new();
    for t in toks {
        if t.kind != Kind::LineComment {
            continue;
        }
        // Doc comments (`///`, `//!`) are prose — a `lint:allow` there
        // is documentation about the grammar, not an annotation.
        if t.text.starts_with("///") || t.text.starts_with("//!") {
            continue;
        }
        let Some(at) = t.text.find("lint:allow") else {
            continue;
        };
        let rest = &t.text[at + "lint:allow".len()..];
        let mut rules = Vec::new();
        let mut has_reason = false;
        if let Some(open) = rest.find('(') {
            if let Some(close) = rest[open..].find(')') {
                let list = &rest[open + 1..open + close];
                for r in list.split(',') {
                    let r = r.trim();
                    if !r.is_empty() {
                        rules.push(r.to_string());
                    }
                }
                let after = rest[open + close + 1..].trim_start();
                if let Some(reason) = after.strip_prefix(':') {
                    has_reason = !reason.trim().is_empty();
                }
            }
        }
        let target_line = if code_lines.binary_search(&t.line).is_ok() {
            t.line
        } else {
            code_lines
                .iter()
                .copied()
                .find(|&l| l > t.line)
                .unwrap_or(t.line)
        };
        allows.push(Allow {
            rules,
            has_reason,
            line: t.line,
            target_line,
            used: Cell::new(false),
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_and_impls_are_qualified() {
        let m = FileModel::build(
            "x.rs",
            "impl Simulator { pub fn step(&mut self) -> u32 { 1 } }\n\
             impl Scheme for NonClustered { fn plan_cycle_into(&mut self) {} }\n\
             fn free_standing() {}\n",
        );
        let names: Vec<(Option<&str>, &str)> = m
            .fns
            .iter()
            .map(|f| (f.impl_type.as_deref(), f.name.as_str()))
            .collect();
        assert!(names.contains(&(Some("Simulator"), "step")));
        assert!(names.contains(&(Some("NonClustered"), "plan_cycle_into")));
        assert!(names.contains(&(None, "free_standing")));
    }

    #[test]
    fn cfg_test_and_mod_tests_are_marked() {
        let m = FileModel::build(
            "x.rs",
            "fn prod() { body(); }\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { inner(); }\n}\n",
        );
        assert!(!m.line_in_test(1));
        assert!(m.line_in_test(4));
        let helper = m
            .fns
            .iter()
            .find(|f| f.name == "helper")
            .expect("helper fn is modeled");
        assert!(helper.is_test);
    }

    #[test]
    fn cfg_not_test_is_production() {
        let m = FileModel::build("x.rs", "#[cfg(not(test))]\nfn prod() { body(); }\n");
        assert!(!m.line_in_test(2));
    }

    #[test]
    fn allow_targets_same_or_next_code_line() {
        let m = FileModel::build(
            "x.rs",
            "// lint:allow(determinism): pool diagnostics are trace-only\n\
             let t = now();\n\
             let u = later(); // lint:allow(panic-policy): checked above\n",
        );
        assert_eq!(m.allows.len(), 2);
        assert_eq!(m.allows[0].target_line, 2);
        assert!(m.allows[0].has_reason);
        assert_eq!(m.allows[1].target_line, 3);
    }

    #[test]
    fn allow_without_reason_is_flagged() {
        let m = FileModel::build("x.rs", "// lint:allow(determinism)\nlet t = now();\n");
        assert!(!m.allows[0].has_reason);
    }
}
