//! The interprocedural rules: reachability and taint over the
//! [`CallGraph`].
//!
//! * `transitive-alloc` — the [`crate::rules::HOT_FNS`] registry
//!   entries are *roots*; every non-root function reachable from a
//!   root must be allocation-free. The per-file `hot-path-alloc` rule
//!   keeps checking the roots' own bodies; this rule covers everything
//!   they call, at any depth, so the registry no longer has to chase
//!   helpers. It also polices the registry itself: an entry reachable
//!   from another root is an interior node that must be pruned, and a
//!   non-`pub` entry nothing calls is dead code.
//! * `determinism-taint` — functions whose bodies touch a
//!   nondeterminism source ([`crate::rules::NONDETERMINISTIC_IDENTS`])
//!   taint their callers transitively, in *every* crate. A function in
//!   a deterministic crate's library code whose call chain crosses out
//!   of deterministic-crate jurisdiction into tainted code is flagged —
//!   laundering a wall-clock read through a helper in `mms-bench`
//!   no longer evades the per-file `determinism` rule.
//! * `panic-reachability` — panic sites without invariant messages in
//!   code the per-file `panic-policy` rule does *not* cover (binaries,
//!   integration tests, examples) are findings when a hot root can
//!   reach them.
//!
//! ## `lint:allow` semantics for graph rules
//!
//! An allow on a **call-site** line cuts that edge out of the graph
//! before analysis — so it suppresses exactly the chains that pass
//! through that frame, and nothing else. An allow on the **fact** line
//! (the allocation, the `Instant`, the `.unwrap()`) clears the fact for
//! every chain. Either kind is "used" only when it is load-bearing: a
//! cut edge whose caller no chain reaches, or a cleared fact in an
//! unreachable function, is an unused allow and fails hygiene.

use crate::graph::{allow_cuts, render_chain, CallGraph, Edge};
use crate::model::FileModel;
use crate::report::Finding;
use crate::rules::{self, HOT_FNS};
use crate::symbols::Workspace;

/// Resolve each hot-registry entry to its function index, when present
/// (absence is reported by the per-file registry cross-check).
#[must_use]
pub fn resolve_roots(ws: &Workspace) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (ri, reg) in HOT_FNS.iter().enumerate() {
        let hit = ws.fns.iter().position(|f| {
            !f.is_test
                && f.name == reg.name
                && ws.paths[f.file].ends_with(reg.file)
                && reg
                    .impl_type
                    .map_or(true, |want| f.impl_type.as_deref() == Some(want))
        });
        if let Some(fi) = hit {
            out.push((ri, fi));
        }
    }
    out
}

/// Whether an allow for `rule` clears the fact on `line`, marking it
/// used when it does (a matched fact is a real suppression).
fn fact_allowed(m: &FileModel, rule: &str, line: u32) -> bool {
    let mut any = false;
    for a in m.allows_for(rule, line) {
        if a.has_reason {
            a.used.set(true);
            any = true;
        }
    }
    any
}

/// The edge-cut predicate for `rule`: an allow on the call-site line in
/// the caller's file removes the edge (without marking — used-marking
/// happens after analysis, when we know which cuts were load-bearing).
fn edge_cut<'a>(ws: &'a Workspace, rule: &'a str) -> impl Fn(&Edge) -> bool + 'a {
    move |e: &Edge| allow_cuts(&ws.files[ws.fns[e.from].file], rule, e.line, false)
}

/// Mark the allows behind cut edges used when the cut mattered
/// (`load_bearing` says whether a chain actually arrived at the frame).
fn mark_edge_allows(
    ws: &Workspace,
    g: &CallGraph,
    rule: &str,
    load_bearing: &dyn Fn(&Edge) -> bool,
) {
    for edges in &g.out {
        for e in edges {
            let m = &ws.files[ws.fns[e.from].file];
            if allow_cuts(m, rule, e.line, false) && load_bearing(e) {
                allow_cuts(m, rule, e.line, true);
            }
        }
    }
}

fn finding(rule: &str, file: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: rule.to_string(),
        file: file.to_string(),
        line,
        message,
    }
}

/// `transitive-alloc`: allocation facts in non-root functions reachable
/// from a hot root, plus the two registry-drift checks (interior
/// entries, dead non-pub entries).
#[must_use]
pub fn transitive_alloc(ws: &Workspace, g: &CallGraph, roots: &[(usize, usize)]) -> Vec<Finding> {
    const RULE: &str = "transitive-alloc";
    let root_fns: Vec<usize> = roots.iter().map(|&(_, fi)| fi).collect();
    let cut = edge_cut(ws, RULE);
    let pred = g.reach(&root_fns, &cut);
    mark_edge_allows(ws, g, RULE, &|e| pred[e.from].is_some());

    let mut out = Vec::new();
    for (fi, f) in ws.fns.iter().enumerate() {
        if f.is_test || root_fns.contains(&fi) || pred[fi].is_none() {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let m = &ws.files[f.file];
        let chain = g.chain_to(&pred, fi);
        let start = chain.first().map_or(fi, |e| e.from);
        for (line, label) in rules::alloc_sites(m, lo, hi) {
            if fact_allowed(m, RULE, line) {
                continue;
            }
            out.push(finding(
                RULE,
                &ws.paths[f.file],
                line,
                format!(
                    "`{label}` in `{}` is on a hot path: {} — the data path must not allocate \
                     (cut the edge or clear the fact with `lint:allow({RULE})`)",
                    f.qualified(),
                    render_chain(ws, start, &chain),
                ),
            ));
        }
    }

    // Registry drift. Interior check: a root another root reaches is
    // redundant — transitive-alloc already covers it. Dead check: a
    // non-pub root nothing calls protects nothing.
    for &(ri, fi) in roots {
        let others: Vec<usize> = roots
            .iter()
            .filter(|&&(_, o)| o != fi)
            .map(|&(_, o)| o)
            .collect();
        let p = g.reach(&others, &|_| false);
        let reg = &HOT_FNS[ri];
        if p[fi].is_some() {
            let chain = g.chain_to(&p, fi);
            let start = chain.first().map_or(fi, |e| e.from);
            out.push(finding(
                RULE,
                reg.file,
                ws.fns[fi].line,
                format!(
                    "hot-path registry entry `{}` is an interior node: {} — prune it from \
                     HOT_FNS in crates/lint/src/rules.rs; transitive-alloc already covers it",
                    ws.fns[fi].qualified(),
                    render_chain(ws, start, &chain),
                ),
            ));
        }
        if g.in_degree[fi] == 0 && !ws.fns[fi].is_pub {
            out.push(finding(
                RULE,
                reg.file,
                ws.fns[fi].line,
                format!(
                    "hot-path registry entry `{}` is dead code: not `pub` and nothing in the \
                     workspace calls it — delete the function or the registry entry",
                    ws.fns[fi].qualified(),
                ),
            ));
        }
    }
    out
}

/// Whether symbol `fi` lives in a deterministic crate's library source
/// (the per-file `determinism` rule's jurisdiction).
fn in_det_jurisdiction(ws: &Workspace, fi: usize) -> bool {
    let path = &ws.paths[ws.fns[fi].file];
    rules::crate_of(path).is_some_and(|c| rules::DETERMINISTIC_CRATES.contains(&c))
        && rules::is_library_source(path)
}

/// `determinism-taint`: deterministic-crate library functions whose
/// call chain crosses out of deterministic jurisdiction into code that
/// (transitively) touches a nondeterminism source.
#[must_use]
pub fn determinism_taint(ws: &Workspace, g: &CallGraph) -> Vec<Finding> {
    const RULE: &str = "determinism-taint";
    // Sources: any non-test fn whose body has an unallowed fact. Inside
    // deterministic jurisdiction a per-file `determinism` allow also
    // clears the source — its stated reason covers the usage.
    let mut sources: Vec<usize> = Vec::new();
    let mut fact: Vec<Option<(u32, &'static str, &'static str)>> = vec![None; ws.fns.len()];
    for (fi, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let m = &ws.files[f.file];
        for (line, ident, why) in rules::nondet_sites(m, lo, hi) {
            let cleared = fact_allowed(m, RULE, line)
                || (in_det_jurisdiction(ws, fi)
                    && m.allows_for("determinism", line).any(|a| a.has_reason));
            if !cleared {
                sources.push(fi);
                fact[fi] = Some((line, ident, why));
                break;
            }
        }
    }
    let cut = edge_cut(ws, RULE);
    let next = g.reach_rev(&sources, &cut);
    mark_edge_allows(ws, g, RULE, &|e| next[e.to].is_some());

    let mut out = Vec::new();
    for (fi, f) in ws.fns.iter().enumerate() {
        if f.is_test || !in_det_jurisdiction(ws, fi) {
            continue;
        }
        // Some(Some(e)): tainted through at least one call. A direct
        // fact (Some(None)) is the per-file rule's finding, and a
        // next hop still inside deterministic jurisdiction will carry
        // its own finding (or per-file fact) — flag only the frontier
        // frame where the chain escapes the determinism rules' reach.
        let Some(Some(first)) = next[fi] else {
            continue;
        };
        if in_det_jurisdiction(ws, first.to) {
            continue;
        }
        // Walk the chain forward to the source for the message.
        let mut chain = Vec::new();
        let mut cur = fi;
        while let Some(Some(e)) = next[cur] {
            chain.push(e);
            cur = e.to;
            if chain.len() > ws.fns.len() {
                break;
            }
        }
        let (line, ident, why) = fact[cur].unwrap_or((ws.fns[cur].line, "?", "tainted"));
        out.push(finding(
            RULE,
            &ws.paths[f.file],
            first.line,
            format!(
                "`{}` launders nondeterminism through non-deterministic-crate code: {} — \
                 `{}` uses `{ident}` at {}:{line} ({why})",
                f.qualified(),
                render_chain(ws, fi, &chain),
                ws.fns[cur].qualified(),
                ws.paths[ws.fns[cur].file],
            ),
        ));
    }
    out
}

/// `panic-reachability`: panic sites without invariant messages,
/// outside the per-file `panic-policy` jurisdiction (binaries,
/// integration tests, examples), reachable from a hot root.
#[must_use]
pub fn panic_reachability(ws: &Workspace, g: &CallGraph, roots: &[(usize, usize)]) -> Vec<Finding> {
    const RULE: &str = "panic-reachability";
    let root_fns: Vec<usize> = roots.iter().map(|&(_, fi)| fi).collect();
    let cut = edge_cut(ws, RULE);
    let pred = g.reach(&root_fns, &cut);
    mark_edge_allows(ws, g, RULE, &|e| pred[e.from].is_some());

    let mut out = Vec::new();
    for (fi, f) in ws.fns.iter().enumerate() {
        if f.is_test || pred[fi].is_none() || rules::is_library_source(&ws.paths[f.file]) {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let m = &ws.files[f.file];
        let chain = g.chain_to(&pred, fi);
        let start = chain.first().map_or(fi, |e| e.from);
        for (line, desc) in rules::panic_sites(m, lo, hi) {
            if fact_allowed(m, RULE, line) {
                continue;
            }
            out.push(finding(
                RULE,
                &ws.paths[f.file],
                line,
                format!(
                    "{desc} in `{}` is reachable from a hot root: {} — state the invariant",
                    f.qualified(),
                    render_chain(ws, start, &chain),
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        let models = files
            .iter()
            .map(|(p, s)| FileModel::build(p, s))
            .collect::<Vec<_>>();
        Workspace::build(
            Path::new("/nonexistent"),
            files.iter().map(|(p, _)| p.to_string()).collect(),
            models,
        )
    }

    // The registry lists Simulator::run_sessions in
    // crates/sim/src/simulator.rs as a root — fixtures reuse that path
    // so a real root resolves without touching the registry.
    const ROOT_FILE: &str = "crates/sim/src/simulator.rs";

    #[test]
    fn transitive_alloc_flags_helper_with_chain() {
        let ws = ws_of(&[(
            ROOT_FILE,
            "pub struct Simulator;\nimpl Simulator {\n  pub fn run_sessions(&mut self) { helper(self); }\n}\n\
             fn helper(_s: &Simulator) { let v: Vec<u32> = Vec::new(); drop(v); }\n",
        )]);
        let g = CallGraph::build(&ws);
        let roots = resolve_roots(&ws);
        assert!(roots
            .iter()
            .any(|&(_, fi)| ws.fns[fi].name == "run_sessions"));
        let f = transitive_alloc(&ws, &g, &roots);
        let hit = f
            .iter()
            .find(|x| x.message.contains("`Vec::new` in `helper`"))
            .expect("transitive alloc in helper is flagged");
        assert!(
            hit.message.contains("Simulator::run_sessions"),
            "{}",
            hit.message
        );
    }

    #[test]
    fn transitive_alloc_edge_allow_cuts_only_that_chain() {
        let ws = ws_of(&[(
            ROOT_FILE,
            "pub struct Simulator;\nimpl Simulator {\n  pub fn run_sessions(&mut self) {\n    \
             helper(); // lint:allow(transitive-alloc): cold path, runs once per failure\n  }\n}\n\
             fn helper() { let v: Vec<u32> = Vec::new(); drop(v); }\n",
        )]);
        let g = CallGraph::build(&ws);
        let roots = resolve_roots(&ws);
        let f = transitive_alloc(&ws, &g, &roots);
        assert!(
            !f.iter().any(|x| x.message.contains("helper")),
            "cut edge suppresses the chain: {f:?}"
        );
        // The allow was load-bearing, so it must be marked used.
        assert!(ws.files[0].allows[0].used.get());
    }

    #[test]
    fn determinism_taint_catches_laundering() {
        let ws = ws_of(&[
            (ROOT_FILE, "pub fn drive() { helper_now(); }\n"),
            (
                "crates/bench/src/util.rs",
                "pub fn helper_now() -> u64 { Instant::now(); 0 }\n",
            ),
        ]);
        let g = CallGraph::build(&ws);
        let f = determinism_taint(&ws, &g);
        let hit = f
            .iter()
            .find(|x| x.rule == "determinism-taint")
            .expect("laundered Instant is caught");
        assert!(hit.message.contains("helper_now"), "{}", hit.message);
        assert!(hit.message.contains("Instant"), "{}", hit.message);
    }

    #[test]
    fn panic_reachability_skips_library_code_but_flags_bins() {
        let ws = ws_of(&[
            (
                ROOT_FILE,
                "pub struct Simulator;\nimpl Simulator { pub fn run_sessions(&mut self) { risky(); } }\n",
            ),
            (
                "crates/sim/src/bin/tool.rs",
                "pub fn risky() { let x: Option<u32> = None; x.unwrap(); }\n",
            ),
        ]);
        let g = CallGraph::build(&ws);
        let roots = resolve_roots(&ws);
        let f = panic_reachability(&ws, &g, &roots);
        assert!(
            f.iter().any(|x| x.file.contains("bin/tool.rs")),
            "unwrap in a bin reachable from a root is flagged: {f:?}"
        );
    }
}
