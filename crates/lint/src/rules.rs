//! The invariant rules and their registries.
//!
//! | Rule | Protects | Scope |
//! |---|---|---|
//! | `determinism` | bit-identical output at any thread count (PR 1/2) | deterministic crates' non-test code |
//! | `hot-path-alloc` | the zero-allocation data path (PR 3) | registered hot functions |
//! | `unsafe-pragma` | `#![forbid(unsafe_code)]` on every first-party crate | crate roots |
//! | `panic-policy` | panics in library code state their invariant | non-test library code |
//! | `paper-refs` | citations stay within the paper (Eqs 1–19, Figs 1–9, Tables 1–3) | all comments |
//! | `transitive-alloc` | zero allocation everywhere *reachable* from a hot root | workspace call graph |
//! | `determinism-taint` | no laundering nondeterminism through helper crates | workspace call graph |
//! | `panic-reachability` | reachable panic sites outside library code state invariants | workspace call graph |
//!
//! The last three are interprocedural: they run on the call graph built
//! by [`crate::graph`] over the symbol table of [`crate::symbols`], and
//! live in [`crate::taint`]. This module keeps the per-file rules and
//! the registries (hot roots, equations, fact patterns) both layers
//! share.

use crate::model::FileModel;
use crate::report::Finding;
use crate::scan::Kind;

/// Names of every rule, in reporting order.
pub const RULE_NAMES: [&str; 8] = [
    "determinism",
    "hot-path-alloc",
    "unsafe-pragma",
    "panic-policy",
    "paper-refs",
    "transitive-alloc",
    "determinism-taint",
    "panic-reachability",
];

/// The interprocedural rules: they need the whole-workspace call graph
/// and cannot run per-file. `lint:allow` semantics differ too — an
/// allow on a *call-site* line cuts that edge out of the graph
/// (suppressing only chains through that frame), while an allow on the
/// allocation/nondeterminism/panic *fact* line clears the fact itself.
pub const GRAPH_RULES: [&str; 3] = [
    "transitive-alloc",
    "determinism-taint",
    "panic-reachability",
];

/// Crates whose library code must be deterministic: no wall-clock
/// reads, no iteration-order-random collections, no ambient randomness.
/// (`mms-bench` measures wall time on purpose; `mms-lint` never runs
/// inside a simulation.)
pub const DETERMINISTIC_CRATES: [&str; 12] = [
    "analysis",
    "buffer",
    "core",
    "disk",
    "exec",
    "fleet",
    "layout",
    "parity",
    "reliability",
    "sched",
    "sim",
    "telemetry",
];

/// Identifiers whose mere presence in deterministic code is a finding.
pub const NONDETERMINISTIC_IDENTS: [(&str, &str); 8] = [
    ("Instant", "wall-clock time leaks scheduling into results"),
    (
        "SystemTime",
        "wall-clock time leaks scheduling into results",
    ),
    ("HashMap", "iteration order is randomized per process"),
    ("HashSet", "iteration order is randomized per process"),
    ("RandomState", "hasher seeds are randomized per process"),
    ("thread_rng", "ambient RNG is not seed-controlled"),
    ("from_entropy", "ambient RNG is not seed-controlled"),
    ("OsRng", "ambient RNG is not seed-controlled"),
];

/// One entry of the hot-function registry: the function must exist
/// (renaming it without updating the registry is itself a finding) and
/// its body must not contain the forbidden allocation tokens.
pub struct HotFn {
    /// Workspace-relative file the function lives in.
    pub file: &'static str,
    /// Required enclosing `impl` type, when the bare name is ambiguous.
    pub impl_type: Option<&'static str>,
    /// Exact function name.
    pub name: &'static str,
    /// Why the function is hot.
    pub why: &'static str,
}

/// The zero-allocation registry (PR 3's guarantee, made static).
///
/// Since `transitive-alloc` walks the call graph, the registry lists
/// only the **roots** of the hot paths — the entry points a driver
/// calls per cycle (or per event) — not every function on them.
/// `Simulator::step`, the schedulers' `plan_cycle_into`/`fast_forward`
/// family, the XOR kernels, and the `BlockOracle` streaming paths are
/// all reachable from these roots and covered transitively;
/// registering them again would be flagged as an interior node. A
/// root nothing calls and nothing exports is flagged as dead.
pub const HOT_FNS: &[HotFn] = &[
    HotFn {
        file: "crates/parity/src/block.rs",
        impl_type: None,
        name: "slice_is_zero",
        why: "word-wise zero scan (leaf kernel, called via is_zero wrappers)",
    },
    HotFn {
        file: "crates/parity/src/accum.rs",
        impl_type: Some("ParityAccumulator"),
        name: "absorb",
        why: "reusable parity accumulation",
    },
    HotFn {
        file: "crates/parity/src/accum.rs",
        impl_type: Some("ParityAccumulator"),
        name: "absorb_bytes",
        why: "reusable parity accumulation (bytes)",
    },
    HotFn {
        file: "crates/sim/src/simulator.rs",
        impl_type: Some("Simulator"),
        name: "run_sessions",
        why: "session-driven simulation loop (reaches step, schedulers, verify)",
    },
    HotFn {
        file: "crates/telemetry/src/flight.rs",
        impl_type: Some("FlightRecorder"),
        name: "record",
        why: "per-event black-box append",
    },
    HotFn {
        file: "crates/fleet/src/fleet.rs",
        impl_type: Some("Fleet"),
        name: "step",
        why: "per-cycle fleet step (control plane + nodes + routing)",
    },
];

/// One entry of the paper-equation registry.
pub struct EqEntry {
    /// Equation number (1–19).
    pub eq: u32,
    /// File that implements it.
    pub file: &'static str,
    /// The implementing item; must exist in `file`.
    pub item: &'static str,
    /// What the equation computes.
    pub what: &'static str,
}

/// Every numbered equation of the paper mapped to its implementing
/// item. `check` verifies the item still exists and the file still
/// cites the equation, and reports coverage over all 19.
pub const EQ_REGISTRY: &[EqEntry] = &[
    EqEntry {
        eq: 1,
        file: "crates/analysis/src/overhead.rs",
        item: "storage_overhead_fraction",
        what: "parity storage overhead 1/C",
    },
    EqEntry {
        eq: 2,
        file: "crates/analysis/src/overhead.rs",
        item: "bandwidth_overhead_fraction",
        what: "bandwidth overhead, clustered schemes",
    },
    EqEntry {
        eq: 3,
        file: "crates/analysis/src/overhead.rs",
        item: "bandwidth_overhead_fraction",
        what: "bandwidth overhead, improved-bandwidth",
    },
    EqEntry {
        eq: 4,
        file: "crates/reliability/src/formulas.rs",
        item: "mttf_raid",
        what: "MTTF of SR/SG/NC",
    },
    EqEntry {
        eq: 5,
        file: "crates/reliability/src/formulas.rs",
        item: "mttf_improved",
        what: "MTTF of IB (2C-1 exposure)",
    },
    EqEntry {
        eq: 6,
        file: "crates/reliability/src/formulas.rs",
        item: "mttds_shared",
        what: "MTTDS with k masked failures",
    },
    EqEntry {
        eq: 7,
        file: "crates/analysis/src/streams.rs",
        item: "streams_per_disk_bound",
        what: "per-disk stream bound",
    },
    EqEntry {
        eq: 8,
        file: "crates/analysis/src/streams.rs",
        item: "max_streams_fractional",
        what: "N_SR stream capacity",
    },
    EqEntry {
        eq: 9,
        file: "crates/analysis/src/streams.rs",
        item: "max_streams_fractional",
        what: "N_SG stream capacity",
    },
    EqEntry {
        eq: 10,
        file: "crates/analysis/src/streams.rs",
        item: "max_streams_fractional",
        what: "N_NC stream capacity",
    },
    EqEntry {
        eq: 11,
        file: "crates/analysis/src/streams.rs",
        item: "max_streams_fractional",
        what: "N_IB stream capacity",
    },
    EqEntry {
        eq: 12,
        file: "crates/analysis/src/buffers.rs",
        item: "buffer_tracks",
        what: "BF_SR buffer tracks",
    },
    EqEntry {
        eq: 13,
        file: "crates/analysis/src/buffers.rs",
        item: "buffer_tracks",
        what: "BF_SG buffer tracks",
    },
    EqEntry {
        eq: 14,
        file: "crates/analysis/src/buffers.rs",
        item: "buffer_tracks_fractional",
        what: "BF_NC buffer tracks (buffer servers)",
    },
    EqEntry {
        eq: 15,
        file: "crates/analysis/src/buffers.rs",
        item: "buffer_tracks",
        what: "BF_IB buffer tracks",
    },
    EqEntry {
        eq: 16,
        file: "crates/analysis/src/cost.rs",
        item: "total_cost",
        what: "total cost, SR",
    },
    EqEntry {
        eq: 17,
        file: "crates/analysis/src/cost.rs",
        item: "total_cost",
        what: "total cost, SG",
    },
    EqEntry {
        eq: 18,
        file: "crates/analysis/src/cost.rs",
        item: "total_cost",
        what: "total cost, NC",
    },
    EqEntry {
        eq: 19,
        file: "crates/analysis/src/cost.rs",
        item: "total_cost",
        what: "total cost, IB",
    },
];

/// Citation ranges that exist in the paper.
pub const EQ_RANGE: (u32, u32) = (1, 19);
/// Figures 1–9.
pub const FIG_RANGE: (u32, u32) = (1, 9);
/// Tables 1–3.
pub const TABLE_RANGE: (u32, u32) = (1, 3);

/// The crate directory name (`crates/<name>/…`) of a workspace path.
pub fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Whether `path` is library (non-binary, non-test-target) source of a
/// first-party crate: `crates/<c>/src/**` excluding `src/bin/**`, or
/// the root package's `src/lib.rs`.
pub fn is_library_source(path: &str) -> bool {
    if path == "src/lib.rs" {
        return true;
    }
    let Some(c) = crate_of(path) else {
        return false;
    };
    let prefix = format!("crates/{c}/src/");
    path.starts_with(&prefix) && !path.starts_with(&format!("crates/{c}/src/bin/"))
}

/// Whether `path` is a first-party crate root (`lib.rs`).
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs"
        || (path.starts_with("crates/")
            && path.ends_with("/src/lib.rs")
            && path.matches('/').count() == 3)
}

fn finding(rule: &'static str, path: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: rule.to_string(),
        file: path.to_string(),
        line,
        message,
    }
}

/// `determinism`: forbid wall-clock, hash-randomized collections, and
/// ambient randomness in deterministic crates' non-test code.
pub fn determinism(m: &FileModel) -> Vec<Finding> {
    let mut out = Vec::new();
    let applies = crate_of(&m.path).is_some_and(|c| DETERMINISTIC_CRATES.contains(&c))
        && is_library_source(&m.path);
    if !applies {
        return out;
    }
    for (t, &in_test) in m.toks.iter().zip(&m.in_test) {
        if in_test || t.kind != Kind::Ident {
            continue;
        }
        if let Some((ident, why)) = NONDETERMINISTIC_IDENTS
            .iter()
            .find(|(ident, _)| t.text == *ident)
        {
            out.push(finding(
                "determinism",
                &m.path,
                t.line,
                format!("`{ident}` in deterministic crate: {why}"),
            ));
        }
    }
    out
}

/// Token-sequence matcher over non-comment tokens of a body range.
struct Seq<'a> {
    m: &'a FileModel,
    idx: Vec<usize>,
}

impl<'a> Seq<'a> {
    fn body(m: &'a FileModel, lo: usize, hi: usize) -> Seq<'a> {
        let idx = (lo..=hi.min(m.toks.len().saturating_sub(1)))
            .filter(|&i| !m.toks[i].is_comment())
            .collect();
        Seq { m, idx }
    }

    fn text(&self, k: usize) -> Option<&str> {
        self.idx.get(k).map(|&i| self.m.toks[i].text.as_str())
    }

    fn line(&self, k: usize) -> u32 {
        self.idx.get(k).map_or(0, |&i| self.m.toks[i].line)
    }

    fn in_test(&self, k: usize) -> bool {
        self.idx.get(k).is_some_and(|&i| self.m.in_test[i])
    }

    fn len(&self) -> usize {
        self.idx.len()
    }

    /// Does the literal token sequence `pat` start at position `k`?
    fn matches(&self, k: usize, pat: &[&str]) -> bool {
        pat.iter()
            .enumerate()
            .all(|(d, p)| self.text(k + d) == Some(*p))
    }
}

/// The allocation tokens forbidden in hot functions.
const HOT_FORBIDDEN: &[(&[&str], &str)] = &[
    (&["Vec", ":", ":", "new"], "Vec::new"),
    (&["vec", "!"], "vec!"),
    (&[".", "to_vec"], ".to_vec()"),
    (&["Box", ":", ":", "new"], "Box::new"),
    (&["format", "!"], "format!"),
    (&[".", "collect"], ".collect()"),
    // Cloning a stream entry or failure set hides a heap allocation the
    // moment the struct holds a non-empty Vec/BTreeSet; planners must
    // copy scalar fields or hold a shared borrow instead.
    (&[".", "clone"], ".clone()"),
    (&[".", "cloned"], ".cloned()"),
];

/// Allocation fact sites within a body token range: every occurrence
/// of a [`HOT_FORBIDDEN`] pattern outside test code, as
/// `(line, label)`. Shared by the per-file `hot-path-alloc` rule and
/// the interprocedural `transitive-alloc` rule.
#[must_use]
pub fn alloc_sites(m: &FileModel, lo: usize, hi: usize) -> Vec<(u32, &'static str)> {
    let seq = Seq::body(m, lo, hi);
    let mut out = Vec::new();
    for k in 0..seq.len() {
        if seq.in_test(k) {
            continue;
        }
        for (pat, label) in HOT_FORBIDDEN {
            if seq.matches(k, pat) {
                out.push((seq.line(k), *label));
            }
        }
    }
    out
}

/// Nondeterminism fact sites within a body token range: every
/// [`NONDETERMINISTIC_IDENTS`] occurrence outside test code, as
/// `(line, ident, why)`. Shared with the `determinism-taint` rule,
/// which seeds its sources from these in *any* crate.
#[must_use]
pub fn nondet_sites(m: &FileModel, lo: usize, hi: usize) -> Vec<(u32, &'static str, &'static str)> {
    let mut out = Vec::new();
    for i in lo..=hi.min(m.toks.len().saturating_sub(1)) {
        let t = &m.toks[i];
        if m.in_test[i] || t.kind != Kind::Ident {
            continue;
        }
        if let Some((ident, why)) = NONDETERMINISTIC_IDENTS
            .iter()
            .find(|(ident, _)| t.text == *ident)
        {
            out.push((t.line, *ident, *why));
        }
    }
    out
}

/// Panic fact sites within a body token range: `.unwrap()`, and
/// `.expect(…)`/`panic!(…)` whose message is not a string literal of at
/// least [`MIN_PANIC_MSG`] chars — as `(line, short description)`.
/// Shared with the `panic-reachability` rule.
#[must_use]
pub fn panic_sites(m: &FileModel, lo: usize, hi: usize) -> Vec<(u32, &'static str)> {
    let seq = Seq::body(m, lo, hi);
    let msg_ok = |k: usize| {
        seq.idx.get(k).is_some_and(|&i| m.toks[i].kind == Kind::Str)
            && seq.text(k).is_some_and(|s| s.trim().len() >= MIN_PANIC_MSG)
    };
    let mut out = Vec::new();
    for k in 0..seq.len() {
        if seq.in_test(k) {
            continue;
        }
        if seq.matches(k, &[".", "unwrap", "(", ")"]) {
            out.push((seq.line(k), "`.unwrap()`"));
        }
        if seq.matches(k, &[".", "expect", "("]) && !msg_ok(k + 3) {
            out.push((seq.line(k), "`.expect(…)` without an invariant message"));
        }
        if seq.matches(k, &["panic", "!", "("]) && !msg_ok(k + 3) {
            out.push((seq.line(k), "`panic!` without an invariant message"));
        }
    }
    out
}

/// `hot-path-alloc`: registered hot functions must not allocate via the
/// forbidden constructors.
pub fn hot_path_alloc(m: &FileModel, matched: &mut [bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (reg_ix, reg) in HOT_FNS.iter().enumerate() {
        if !m.path.ends_with(reg.file) {
            continue;
        }
        for f in &m.fns {
            if f.is_test || f.name != reg.name {
                continue;
            }
            if let Some(want) = reg.impl_type {
                if f.impl_type.as_deref() != Some(want) {
                    continue;
                }
            }
            matched[reg_ix] = true;
            let Some((lo, hi)) = f.body else { continue };
            for (line, label) in alloc_sites(m, lo, hi) {
                out.push(finding(
                    "hot-path-alloc",
                    &m.path,
                    line,
                    format!(
                        "`{label}` in hot function `{}` ({}): the data path must not allocate",
                        reg.name, reg.why
                    ),
                ));
            }
        }
    }
    out
}

/// `unsafe-pragma`: every first-party crate root carries
/// `#![forbid(unsafe_code)]`.
pub fn unsafe_pragma(m: &FileModel) -> Vec<Finding> {
    if !is_crate_root(&m.path) {
        return Vec::new();
    }
    let code: Vec<&str> = m
        .toks
        .iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.text.as_str())
        .collect();
    let pat = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let found = code
        .windows(pat.len())
        .any(|w| w.iter().zip(pat.iter()).all(|(a, b)| a == b));
    if found {
        Vec::new()
    } else {
        vec![finding(
            "unsafe-pragma",
            &m.path,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        )]
    }
}

/// Minimum length for a panic/expect message to count as stating an
/// invariant rather than being a placeholder.
const MIN_PANIC_MSG: usize = 10;

/// `panic-policy`: `.unwrap()` / `.expect(…)` / `panic!` in non-test
/// library code must state the invariant they rely on (or carry an
/// annotation).
pub fn panic_policy(m: &FileModel) -> Vec<Finding> {
    let mut out = Vec::new();
    if !is_library_source(&m.path) {
        return out;
    }
    let idx: Vec<usize> = (0..m.toks.len())
        .filter(|&i| !m.toks[i].is_comment())
        .collect();
    let text = |k: usize| idx.get(k).map(|&i| m.toks[i].text.as_str());
    let kind = |k: usize| idx.get(k).map(|&i| m.toks[i].kind);
    for (k, &tok_i) in idx.iter().enumerate() {
        if m.in_test[tok_i] {
            continue;
        }
        let line = m.toks[tok_i].line;
        // `.unwrap()`
        if text(k) == Some(".")
            && text(k + 1) == Some("unwrap")
            && text(k + 2) == Some("(")
            && text(k + 3) == Some(")")
        {
            out.push(finding(
                "panic-policy",
                &m.path,
                line,
                "`.unwrap()` in library code: use `.expect(\"<invariant>\")` or annotate"
                    .to_string(),
            ));
        }
        // `.expect(<msg>)`
        if text(k) == Some(".") && text(k + 1) == Some("expect") && text(k + 2) == Some("(") {
            let ok = kind(k + 3) == Some(Kind::Str)
                && text(k + 3).is_some_and(|s| s.trim().len() >= MIN_PANIC_MSG);
            if !ok {
                out.push(finding(
                    "panic-policy",
                    &m.path,
                    line,
                    format!(
                        "`.expect(…)` message must be a string literal of ≥ {MIN_PANIC_MSG} chars stating the invariant"
                    ),
                ));
            }
        }
        // `panic!(<msg>, …)`
        if kind(k) == Some(Kind::Ident)
            && text(k) == Some("panic")
            && text(k + 1) == Some("!")
            && text(k + 2) == Some("(")
        {
            let ok = kind(k + 3) == Some(Kind::Str)
                && text(k + 3).is_some_and(|s| s.trim().len() >= MIN_PANIC_MSG);
            if !ok {
                out.push(finding(
                    "panic-policy",
                    &m.path,
                    line,
                    format!(
                        "`panic!` in library code needs a string message of ≥ {MIN_PANIC_MSG} chars stating the invariant"
                    ),
                ));
            }
        }
    }
    out
}

/// A citation parsed out of a comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Citation {
    /// What is being cited.
    pub kind: CiteKind,
    /// The cited number.
    pub num: u32,
    /// Line of the citation.
    pub line: u32,
}

/// Citation target classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CiteKind {
    /// `Eq. n` / `Eqs. n–m`.
    Eq,
    /// `Figure n` / `Fig. n` / `Figs. n/m`.
    Fig,
    /// `Table n` / `Tables n and m`.
    Table,
}

/// Extract paper citations from one comment's text starting at `line`.
pub fn scan_citations(text: &str, start_line: u32) -> Vec<Citation> {
    let mut out = Vec::new();
    for (off, l) in text.split('\n').enumerate() {
        let line = start_line + off as u32;
        let chars: Vec<char> = l.chars().collect();
        for (kw, kind) in [
            ("Eqs.", CiteKind::Eq),
            ("Eq.", CiteKind::Eq),
            ("Figures", CiteKind::Fig),
            ("Figure", CiteKind::Fig),
            ("Figs.", CiteKind::Fig),
            ("Fig.", CiteKind::Fig),
            ("Tables", CiteKind::Table),
            ("Table", CiteKind::Table),
        ] {
            let mut from = 0usize;
            while let Some(pos) = find_word(&chars, kw, from) {
                from = pos + kw.len();
                parse_numbers(&chars, from, kind, line, &mut out);
            }
        }
    }
    out
}

/// Find `kw` in `chars` at or after `from`, demanding a non-alphanumeric
/// character on the left so `Freq.` can never match `Eq.`.
fn find_word(chars: &[char], kw: &str, from: usize) -> Option<usize> {
    let kwc: Vec<char> = kw.chars().collect();
    let mut i = from;
    while i + kwc.len() <= chars.len() {
        if chars[i..i + kwc.len()] == kwc[..] {
            let left_ok = i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
            // A bare `Figure`/`Table` keyword must also not continue as a
            // longer word (`Tabled`, `Figurehead`).
            let right = chars.get(i + kwc.len()).copied();
            let right_ok =
                kw.ends_with('.') || !right.is_some_and(|c| c.is_alphanumeric() || c == '_');
            if left_ok && right_ok {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Parse `( n )`, `n`, `n–m`, `n/m`, `n, m`, `n and m` after a keyword.
/// Numbers above 99 in *continuations* are treated as prose ("Figure 9
/// and 300 000 hours"), not citations.
fn parse_numbers(chars: &[char], mut i: usize, kind: CiteKind, line: u32, out: &mut Vec<Citation>) {
    let skip_ws = |i: &mut usize| {
        while chars.get(*i).is_some_and(|c| *c == ' ') {
            *i += 1;
        }
    };
    let read_num = |i: &mut usize| -> Option<u32> {
        let start = *i;
        while chars.get(*i).is_some_and(char::is_ascii_digit) {
            *i += 1;
        }
        if *i == start {
            return None;
        }
        chars[start..*i].iter().collect::<String>().parse().ok()
    };
    skip_ws(&mut i);
    let parenthesized = chars.get(i) == Some(&'(');
    if parenthesized {
        i += 1;
        skip_ws(&mut i);
    }
    let Some(first) = read_num(&mut i) else {
        return;
    };
    out.push(Citation {
        kind,
        num: first,
        line,
    });
    let mut prev = first;
    loop {
        if parenthesized && chars.get(i) == Some(&')') {
            i += 1;
        }
        skip_ws(&mut i);
        let c = chars.get(i).copied();
        let is_range = matches!(c, Some('–' | '—' | '-'));
        let is_list = matches!(c, Some('/' | ','));
        let is_and = chars.get(i..i + 3).is_some_and(|w| w == ['a', 'n', 'd']);
        if is_range || is_list {
            i += 1;
        } else if is_and {
            i += 3;
        } else {
            return;
        }
        skip_ws(&mut i);
        let Some(n) = read_num(&mut i) else { return };
        if n > 99 {
            // Prose like "Figure 9 and 300 000 hours".
            return;
        }
        if is_range && n > prev && n - prev <= 30 {
            for x in prev + 1..=n {
                out.push(Citation { kind, num: x, line });
            }
        } else {
            out.push(Citation { kind, num: n, line });
        }
        prev = n;
    }
}

/// `paper-refs` per-file half: out-of-range citations are findings;
/// all equation citations are returned for workspace-level coverage.
pub fn paper_refs(m: &FileModel) -> (Vec<Finding>, Vec<Citation>) {
    let mut out = Vec::new();
    let mut eqs = Vec::new();
    for t in &m.toks {
        if !t.is_comment() {
            continue;
        }
        for c in scan_citations(&t.text, t.line) {
            let (label, (lo, hi)) = match c.kind {
                CiteKind::Eq => ("Eq.", EQ_RANGE),
                CiteKind::Fig => ("Figure", FIG_RANGE),
                CiteKind::Table => ("Table", TABLE_RANGE),
            };
            if c.num < lo || c.num > hi {
                out.push(finding(
                    "paper-refs",
                    &m.path,
                    c.line,
                    format!(
                        "citation `{label} {}` is outside the paper's range {lo}–{hi}",
                        c.num
                    ),
                ));
            } else if c.kind == CiteKind::Eq {
                eqs.push(c);
            }
        }
    }
    (out, eqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn citations_parse_singles_ranges_and_lists() {
        let c = scan_citations("// Eqs. 16–19 and Figure 6/7, Table 2 and 3", 5);
        let eqs: Vec<u32> = c
            .iter()
            .filter(|x| x.kind == CiteKind::Eq)
            .map(|x| x.num)
            .collect();
        assert_eq!(eqs, vec![16, 17, 18, 19]);
        let figs: Vec<u32> = c
            .iter()
            .filter(|x| x.kind == CiteKind::Fig)
            .map(|x| x.num)
            .collect();
        assert_eq!(figs, vec![6, 7]);
        let tabs: Vec<u32> = c
            .iter()
            .filter(|x| x.kind == CiteKind::Table)
            .map(|x| x.num)
            .collect();
        assert_eq!(tabs, vec![2, 3]);
    }

    #[test]
    fn citations_ignore_prose_continuations() {
        let c = scan_citations("// Figure 9 and 300 000 hours of uptime", 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].num, 9);
    }

    #[test]
    fn citations_respect_word_boundaries() {
        assert!(scan_citations("// The Freq. 6 sampling", 1).is_empty());
        assert!(scan_citations("// Tabled 4 motions", 1).is_empty());
        assert_eq!(scan_citations("// Eq. (6) parenthesized", 1).len(), 1);
    }

    #[test]
    fn eq_registry_covers_all_19_equations_exactly_once() {
        let mut seen = [false; 20];
        for e in EQ_REGISTRY {
            assert!(
                (1..=19).contains(&e.eq),
                "registry equation {} out of range",
                e.eq
            );
            assert!(!seen[e.eq as usize], "equation {} duplicated", e.eq);
            seen[e.eq as usize] = true;
        }
        assert!(seen[1..=19].iter().all(|&s| s), "all 19 equations mapped");
    }
}
