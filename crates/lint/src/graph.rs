//! Conservative workspace call graph.
//!
//! Edges over-approximate the real program: a function call the
//! analyzer cannot resolve precisely produces edges to *every*
//! plausible callee, never none — so reachability-based rules
//! (transitive allocation, determinism taint, panic reachability) can
//! miss nothing that a precise analysis would find, at the cost of
//! some spurious chains. Resolution, from most to least precise:
//!
//! * `Type::name(…)` / `Self::name(…)` — methods of that impl type
//!   (`Self` resolves to the caller's enclosing type);
//! * `self.name(…)` — methods of the caller's enclosing type when any
//!   exist, otherwise every method of that name (trait-object and
//!   generic-receiver dispatch over-approximated to all implementors);
//! * `expr.name(…)` — every method of that name; when no impl defines
//!   one, free functions of that name (this is how default trait
//!   methods, modeled as free functions, stay reachable);
//! * `name(…)` / `module::name(…)` — free functions of that name.
//!
//! Every candidate set is filtered by the crate dependency closure
//! (`sim` code cannot call into `bench`, so a shared method name
//! produces no such edge) and test-only functions never participate.
//! Calls that resolve to nothing (std, vendored crates) produce no
//! edge: their effects are visible to the rules as tokens at the call
//! site itself (`.collect()`, `Instant`), which the per-function fact
//! scan already captures. Closures have no identity of their own —
//! their bodies lie inside the enclosing function's token range, so
//! calls made from a closure are attributed to the enclosing function.

use crate::model::FileModel;
use crate::scan::Kind;
use crate::symbols::Workspace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One call edge: `from` calls `to` at `line` of `from`'s file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Caller function index.
    pub from: usize,
    /// Callee function index.
    pub to: usize,
    /// Line of the call site (in the caller's file).
    pub line: u32,
}

/// The workspace call graph over [`Workspace::fns`].
pub struct CallGraph {
    /// Outgoing edges per function, deduplicated, in call-site order.
    pub out: Vec<Vec<Edge>>,
    /// Incoming edge count per function (cheap dead-code signal).
    pub in_degree: Vec<usize>,
}

/// Rust keywords that look like call syntax heads (`if (…)`,
/// `while (…)`) and must never resolve to a function.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "move",
    "ref", "mut", "where", "impl", "dyn", "break", "continue", "unsafe", "async", "await",
];

impl CallGraph {
    /// Build the graph for every non-test function with a body.
    #[must_use]
    pub fn build(ws: &Workspace) -> CallGraph {
        // name -> (typed candidates, free candidates), test fns excluded.
        let mut typed: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in ws.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            if f.impl_type.is_some() {
                typed.entry(&f.name).or_default().push(i);
            } else {
                free.entry(&f.name).or_default().push(i);
            }
        }
        let mut out: Vec<Vec<Edge>> = vec![Vec::new(); ws.fns.len()];
        let mut in_degree = vec![0usize; ws.fns.len()];
        for (ci, caller) in ws.fns.iter().enumerate() {
            if caller.is_test {
                continue;
            }
            let Some((lo, hi)) = caller.body else {
                continue;
            };
            let model = &ws.files[caller.file];
            let code: Vec<usize> = (lo..=hi.min(model.toks.len().saturating_sub(1)))
                .filter(|&i| !model.toks[i].is_comment())
                .collect();
            let tok = |k: usize| code.get(k).map(|&i| &model.toks[i]);
            let text = |k: usize| tok(k).map(|t| t.text.as_str());
            let mut edges: Vec<Edge> = Vec::new();
            for (k, &ti) in code.iter().enumerate() {
                let t = &model.toks[ti];
                if t.kind != Kind::Ident || text(k + 1) != Some("(") {
                    continue;
                }
                let name = t.text.as_str();
                if KEYWORDS.contains(&name) {
                    continue;
                }
                let prev = k.checked_sub(1).and_then(text);
                let candidates: Vec<usize> = if prev == Some(".") {
                    // Method call. `self.name(…)` prefers the caller's
                    // own impl type.
                    let methods = typed.get(name).map(Vec::as_slice).unwrap_or(&[]);
                    let receiver_self = k >= 2 && text(k - 2) == Some("self");
                    let own: Vec<usize> = if receiver_self {
                        methods
                            .iter()
                            .copied()
                            .filter(|&m| {
                                ws.fns[m].impl_type == caller.impl_type
                                    && caller.impl_type.is_some()
                            })
                            .collect()
                    } else {
                        Vec::new()
                    };
                    if !own.is_empty() {
                        own
                    } else if !methods.is_empty() {
                        methods.to_vec()
                    } else {
                        // Default trait methods are modeled as free fns.
                        free.get(name).cloned().unwrap_or_default()
                    }
                } else if prev == Some(":") && k >= 2 && text(k - 2) == Some(":") {
                    // Qualified call `Q::name(…)`.
                    let qualifier = k.checked_sub(3).and_then(text);
                    let methods = typed.get(name).map(Vec::as_slice).unwrap_or(&[]);
                    match qualifier {
                        Some("Self") => methods
                            .iter()
                            .copied()
                            .filter(|&m| {
                                caller.impl_type.is_some()
                                    && ws.fns[m].impl_type == caller.impl_type
                            })
                            .collect(),
                        Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                            // Type-qualified: methods of that type. An
                            // unknown type (std `Vec::new`) resolves to
                            // nothing rather than everything.
                            methods
                                .iter()
                                .copied()
                                .filter(|&m| ws.fns[m].impl_type.as_deref() == Some(q))
                                .collect()
                        }
                        _ => {
                            // Module-qualified free function.
                            free.get(name).cloned().unwrap_or_default()
                        }
                    }
                } else {
                    // Bare call: free functions only.
                    free.get(name).cloned().unwrap_or_default()
                };
                for callee in candidates {
                    if !ws.may_depend(&caller.krate, &ws.fns[callee].krate) {
                        continue;
                    }
                    let e = Edge {
                        from: ci,
                        to: callee,
                        line: t.line,
                    };
                    if !edges.contains(&e) {
                        edges.push(e);
                    }
                }
            }
            for e in &edges {
                in_degree[e.to] += 1;
            }
            out[ci] = edges;
        }
        CallGraph { out, in_degree }
    }

    /// Multi-source BFS. Returns per-function predecessor edge
    /// (`None` for unvisited, `Some(None)` for sources,
    /// `Some(Some(edge))` otherwise). `cut` drops edges before
    /// traversal (allow-vetted call sites).
    #[must_use]
    pub fn reach(
        &self,
        sources: &[usize],
        cut: &dyn Fn(&Edge) -> bool,
    ) -> Vec<Option<Option<Edge>>> {
        let mut pred: Vec<Option<Option<Edge>>> = vec![None; self.out.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &s in sources {
            if pred[s].is_none() {
                pred[s] = Some(None);
                queue.push_back(s);
            }
        }
        while let Some(u) = queue.pop_front() {
            for e in &self.out[u] {
                if cut(e) || pred[e.to].is_some() {
                    continue;
                }
                pred[e.to] = Some(Some(*e));
                queue.push_back(e.to);
            }
        }
        pred
    }

    /// Reverse BFS: every function that can reach one of `targets`
    /// (targets included), with the *next* edge toward the target
    /// recorded so chains can be walked forward.
    #[must_use]
    pub fn reach_rev(
        &self,
        targets: &[usize],
        cut: &dyn Fn(&Edge) -> bool,
    ) -> Vec<Option<Option<Edge>>> {
        let mut rin: Vec<Vec<Edge>> = vec![Vec::new(); self.out.len()];
        for edges in &self.out {
            for e in edges {
                rin[e.to].push(*e);
            }
        }
        let mut next: Vec<Option<Option<Edge>>> = vec![None; self.out.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &t in targets {
            if next[t].is_none() {
                next[t] = Some(None);
                queue.push_back(t);
            }
        }
        while let Some(v) = queue.pop_front() {
            for e in &rin[v] {
                if cut(e) || next[e.from].is_some() {
                    continue;
                }
                next[e.from] = Some(Some(*e));
                queue.push_back(e.from);
            }
        }
        next
    }

    /// Walk the forward chain root → … → `target` out of a
    /// [`reach`](Self::reach) predecessor table. Returns the edges in
    /// call order (empty when `target` is itself a source).
    #[must_use]
    pub fn chain_to(&self, pred: &[Option<Option<Edge>>], target: usize) -> Vec<Edge> {
        let mut rev = Vec::new();
        let mut cur = target;
        // `Some(Some(e))` is a visited non-source: follow e backwards.
        // `Some(None)` (a source) or `None` (unvisited) ends the walk.
        while let Some(Some(e)) = pred.get(cur).copied().flatten() {
            rev.push(e);
            cur = e.from;
            if rev.len() > self.out.len() {
                break; // cycle guard; cannot happen with BFS trees
            }
        }
        rev.reverse();
        rev
    }

    /// Render the graph as Graphviz DOT (production functions with at
    /// least one edge, grouped by crate).
    #[must_use]
    pub fn render_dot(&self, ws: &Workspace) -> String {
        let mut s = String::from("digraph mms_calls {\n  rankdir=LR;\n  node [shape=box];\n");
        let mut used = vec![false; ws.fns.len()];
        for edges in &self.out {
            for e in edges {
                used[e.from] = true;
                used[e.to] = true;
            }
        }
        for (i, f) in ws.fns.iter().enumerate() {
            if used[i] {
                let _ = writeln!(
                    s,
                    "  n{i} [label=\"{}\\n{}\"];",
                    f.qualified().replace('"', "'"),
                    f.module
                );
            }
        }
        for edges in &self.out {
            for e in edges {
                let _ = writeln!(s, "  n{} -> n{};", e.from, e.to);
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Resolve a user-supplied function spec (`Type::name` or `name`) to
/// symbol indices, production functions first.
#[must_use]
pub fn resolve_spec(ws: &Workspace, spec: &str) -> Vec<usize> {
    let (ty, name) = match spec.split_once("::") {
        Some((t, n)) => (Some(t), n),
        None => (None, spec),
    };
    let mut hits: Vec<usize> = ws
        .named(name)
        .filter(|&i| match ty {
            Some(t) => ws.fns[i].impl_type.as_deref() == Some(t),
            None => true,
        })
        .collect();
    hits.sort_by_key(|&i| ws.fns[i].is_test);
    hits
}

/// Render one chain of edges (plus its start) as a human-readable
/// call path with file:line anchors.
#[must_use]
pub fn render_chain(ws: &Workspace, start: usize, chain: &[Edge]) -> String {
    let mut s = format!(
        "{} ({}:{})",
        ws.fns[start].qualified(),
        ws.paths[ws.fns[start].file],
        ws.fns[start].line
    );
    for e in chain {
        let _ = write!(
            s,
            " \u{2192} {} (called at {}:{})",
            ws.fns[e.to].qualified(),
            ws.paths[ws.fns[e.from].file],
            e.line
        );
    }
    s
}

/// Find a `lint:allow(rule)` annotation targeting `line` in `model`,
/// returning whether one exists (and marking it used when `mark`).
pub fn allow_cuts(model: &FileModel, rule: &str, line: u32, mark: bool) -> bool {
    let mut any = false;
    for a in model.allows_for(rule, line) {
        if a.has_reason {
            if mark {
                a.used.set(true);
            }
            any = true;
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        let models = files
            .iter()
            .map(|(p, s)| FileModel::build(p, s))
            .collect::<Vec<_>>();
        Workspace::build(
            Path::new("/nonexistent"),
            files.iter().map(|(p, _)| p.to_string()).collect(),
            models,
        )
    }

    fn idx(ws: &Workspace, spec: &str) -> usize {
        resolve_spec(ws, spec)[0]
    }

    #[test]
    fn direct_and_method_calls_resolve() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn top() { helper(); }\nfn helper() {}\n\
             pub struct T;\nimpl T { pub fn m(&self) { self.n(); } fn n(&self) {} }\n",
        )]);
        let g = CallGraph::build(&ws);
        let top = idx(&ws, "top");
        let helper = idx(&ws, "helper");
        assert!(g.out[top].iter().any(|e| e.to == helper));
        let m = idx(&ws, "T::m");
        let n = idx(&ws, "T::n");
        assert!(g.out[m].iter().any(|e| e.to == n));
        assert_eq!(g.in_degree[helper], 1);
    }

    #[test]
    fn unqualified_method_calls_over_approximate_to_all_impls() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub trait S { fn plan(&self); }\n\
             pub struct A; impl S for A { fn plan(&self) {} }\n\
             pub struct B; impl S for B { fn plan(&self) {} }\n\
             pub fn drive(s: &dyn S) { s.plan(); }\n",
        )]);
        let g = CallGraph::build(&ws);
        let drive = idx(&ws, "drive");
        let callees: Vec<&str> = g.out[drive]
            .iter()
            .map(|e| ws.fns[e.to].impl_type.as_deref().unwrap_or(""))
            .collect();
        assert!(
            callees.contains(&"A") && callees.contains(&"B"),
            "{callees:?}"
        );
    }

    #[test]
    fn unknown_type_qualified_calls_produce_no_edge() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn top() { let v: Vec<u32> = Vec::new(); drop(v); }\npub fn new() {}\n",
        )]);
        let g = CallGraph::build(&ws);
        let top = idx(&ws, "top");
        assert!(g.out[top].is_empty(), "Vec::new must not resolve to fn new");
    }

    #[test]
    fn reach_walks_chains() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}\n",
        )]);
        let g = CallGraph::build(&ws);
        let (a, c, lonely) = (idx(&ws, "a"), idx(&ws, "c"), idx(&ws, "lonely"));
        let pred = g.reach(&[a], &|_| false);
        assert!(pred[c].is_some());
        assert!(pred[lonely].is_none());
        let chain = g.chain_to(&pred, c);
        assert_eq!(chain.len(), 2);
        let text = render_chain(&ws, a, &chain);
        assert!(text.contains("a (") && text.ends_with(')'), "{text}");
    }

    #[test]
    fn cut_edges_block_reachability() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let g = CallGraph::build(&ws);
        let (a, b, c) = (idx(&ws, "a"), idx(&ws, "b"), idx(&ws, "c"));
        let pred = g.reach(&[a], &|e| e.from == b && e.to == c);
        assert!(pred[b].is_some() && pred[c].is_none());
    }
}
