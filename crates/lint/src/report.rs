//! Findings, coverage, and output formatting (text and JSON).

use std::fmt::Write as _;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that produced the finding (or `lint-allow` for annotation
    /// hygiene errors).
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Coverage status of one registered equation.
#[derive(Debug, Clone)]
pub struct EqCoverage {
    /// Equation number.
    pub eq: u32,
    /// Implementing item from the registry.
    pub item: String,
    /// File the registry maps the equation to.
    pub file: String,
    /// Short description of what the equation computes.
    pub what: String,
    /// Whether the file cites the equation.
    pub cited: bool,
}

/// The outcome of a workspace check.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Paper-equation coverage, one entry per equation 1–19.
    pub coverage: Vec<EqCoverage>,
    /// Number of files scanned.
    pub files_checked: usize,
}

impl Report {
    /// Whether the tree is clean.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of cited equations.
    #[must_use]
    pub fn cited(&self) -> usize {
        self.coverage.iter().filter(|c| c.cited).count()
    }

    /// Render the human-readable report.
    #[must_use]
    pub fn render_text(&self, show_coverage: bool) -> String {
        let mut s = String::new();
        for f in &self.findings {
            let _ = writeln!(s, "{f}");
        }
        if show_coverage && !self.coverage.is_empty() {
            let _ = writeln!(
                s,
                "paper-refs coverage: {}/{} equations cited",
                self.cited(),
                self.coverage.len()
            );
            for c in &self.coverage {
                let mark = if c.cited { "cited" } else { "MISSING" };
                let _ = writeln!(
                    s,
                    "  Eq. {:>2}  {:<28} {:<36} {}",
                    c.eq, c.item, c.file, mark
                );
            }
        }
        let _ = writeln!(
            s,
            "mms-lint: {} file(s) checked, {} finding(s)",
            self.files_checked,
            self.findings.len()
        );
        s
    }

    /// Render the report as JSON (hand-rolled: the linter is
    /// zero-dependency by design).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
        }
        s.push_str("\n  ],\n  \"coverage\": [");
        for (i, c) in self.coverage.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    {{\"eq\": {}, \"item\": {}, \"file\": {}, \"cited\": {}}}",
                c.eq,
                json_str(&c.item),
                json_str(&c.file),
                c.cited
            );
        }
        let _ = write!(
            s,
            "\n  ],\n  \"files_checked\": {},\n  \"ok\": {}\n}}\n",
            self.files_checked,
            self.ok()
        );
        s
    }
}

/// One line of a findings baseline: `rule<TAB>file<TAB>message`. Line
/// numbers are deliberately excluded so unrelated edits above a
/// baselined finding don't churn the file.
#[must_use]
pub fn baseline_key(f: &Finding) -> String {
    format!(
        "{}\t{}\t{}",
        f.rule,
        f.file,
        f.message.replace(['\t', '\n'], " ")
    )
}

/// Serialize findings as a baseline file (sorted, deduplicated — a
/// plain text format so the linter stays zero-dependency).
#[must_use]
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut keys: Vec<String> = findings.iter().map(baseline_key).collect();
    keys.sort();
    keys.dedup();
    let mut s = String::from("# mms-lint baseline: one `rule<TAB>file<TAB>message` per line\n");
    for k in &keys {
        s.push_str(k);
        s.push('\n');
    }
    s
}

/// Parse a baseline file back into its keys (comments and blank lines
/// skipped).
#[must_use]
pub fn parse_baseline(text: &str) -> std::collections::BTreeSet<String> {
    text.lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\nc"), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "determinism".into(),
            file: "crates/sim/src/lib.rs".into(),
            line: 3,
            message: "`Instant` seen".into(),
        });
        r.files_checked = 1;
        let j = r.render_json();
        assert!(j.contains("\"rule\": \"determinism\""));
        assert!(j.contains("\"ok\": false"));
    }
}
