//! A comment- and string-literal-aware Rust token scanner.
//!
//! This is deliberately *not* a full lexer: it produces just enough
//! structure for mechanical invariant checks — identifiers, punctuation,
//! literals, and comments, each tagged with its source line — while
//! guaranteeing that text inside string literals and comments can never
//! be mistaken for code (the classic failure mode of grep-based lints).
//!
//! Handled edge cases: nested block comments, raw strings with any hash
//! depth (`r##"…"##`), byte and raw-byte strings, character literals
//! versus lifetimes (`'a'` vs `'a`), raw identifiers (`r#fn`), and
//! escape sequences inside string/char literals.

/// The coarse token classes the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `Vec`, `unwrap`, …).
    Ident,
    /// Numeric literal (value is never interpreted).
    Num,
    /// String literal of any flavor; `text` keeps the quoted content.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`), without the leading quote.
    Lifetime,
    /// Single punctuation character.
    Punct,
    /// `//`-style comment, including doc comments (`///`, `//!`).
    LineComment,
    /// `/* … */` comment; `line` is the line the comment opens on.
    BlockComment,
}

/// One scanned token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: Kind,
    /// Source text. For `Str` this is the *contents* (quotes and any
    /// raw-string hashes stripped); for comments the full comment text
    /// including the delimiters.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is a comment of either flavor.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, Kind::LineComment | Kind::BlockComment)
    }
}

/// Scan `src` into a token stream. Never panics on malformed input:
/// unterminated literals simply extend to end of input.
#[must_use]
pub fn scan(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            out.push(Tok {
                kind: Kind::LineComment,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.push(Tok {
                kind: Kind::BlockComment,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // String-ish prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…', r#ident.
        if c == 'r' || c == 'b' {
            if let Some(tok_len) = try_string_prefix(&b, i, &mut line, &mut out) {
                i = tok_len;
                continue;
            }
        }
        if c == '"' {
            let (end, text) = lex_quoted(&b, i, &mut line);
            out.push(Tok {
                kind: Kind::Str,
                text,
                line,
            });
            i = end;
            continue;
        }
        if c == '\'' {
            i = lex_quote_or_lifetime(&b, i, line, &mut out);
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.push(Tok {
                kind: Kind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.push(Tok {
                kind: Kind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        out.push(Tok {
            kind: Kind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Try to lex a raw/byte string (or raw identifier, or byte char)
/// starting at `i` where `b[i]` is `r` or `b`. Returns the index one
/// past the token if one was produced.
fn try_string_prefix(b: &[char], i: usize, line: &mut u32, out: &mut Vec<Tok>) -> Option<usize> {
    let start_line = *line;
    let mut j = i + 1;
    let mut raw = b[i] == 'r';
    if b[i] == 'b' {
        match b.get(j) {
            Some('\'') => {
                // Byte char literal b'…'.
                let end = lex_char_body(b, j);
                out.push(Tok {
                    kind: Kind::Char,
                    text: b[i..end].iter().collect(),
                    line: start_line,
                });
                return Some(end);
            }
            Some('r') => {
                raw = true;
                j += 1;
            }
            Some('"') => {}
            _ => return None,
        }
    }
    if raw {
        let mut hashes = 0usize;
        while b.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) != Some(&'"') {
            // `r#ident` raw identifier (or plain ident starting with r).
            if hashes == 1 && b.get(j).is_some_and(|c| c.is_alphanumeric() || *c == '_') {
                let start = j;
                let mut k = j;
                while k < b.len() && (b[k].is_alphanumeric() || b[k] == '_') {
                    k += 1;
                }
                out.push(Tok {
                    kind: Kind::Ident,
                    text: b[start..k].iter().collect(),
                    line: start_line,
                });
                return Some(k);
            }
            return None;
        }
        // Raw string: scan to `"` followed by `hashes` hashes.
        j += 1;
        let content_start = j;
        loop {
            if j >= b.len() {
                break;
            }
            if b[j] == '\n' {
                *line += 1;
            }
            if b[j] == '"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while seen < hashes && b.get(k) == Some(&'#') {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    out.push(Tok {
                        kind: Kind::Str,
                        text: b[content_start..j].iter().collect(),
                        line: start_line,
                    });
                    return Some(k);
                }
            }
            j += 1;
        }
        out.push(Tok {
            kind: Kind::Str,
            text: b[content_start..j].iter().collect(),
            line: start_line,
        });
        return Some(j);
    }
    if b.get(j) == Some(&'"') {
        let (end, text) = lex_quoted(b, j, line);
        out.push(Tok {
            kind: Kind::Str,
            text,
            line: start_line,
        });
        return Some(end);
    }
    None
}

/// Lex a `"…"` literal starting at the opening quote; returns (index
/// one past the closing quote, contents without quotes).
fn lex_quoted(b: &[char], start: usize, line: &mut u32) -> (usize, String) {
    let mut j = start + 1;
    let content_start = j;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '"' => {
                return (j + 1, b[content_start..j].iter().collect());
            }
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, b[content_start..j.min(b.len())].iter().collect())
}

/// Lex the body of a char literal whose opening `'` is at `start`;
/// returns the index one past the closing `'` (best effort).
fn lex_char_body(b: &[char], start: usize) -> usize {
    let mut j = start + 1;
    if b.get(j) == Some(&'\\') {
        j += 2; // skip the escape introducer and the escaped char
        if b.get(j.wrapping_sub(1)) == Some(&'u') {
            // \u{…}
            while j < b.len() && b[j] != '}' {
                j += 1;
            }
            j += 1;
        } else if b.get(j.wrapping_sub(1)) == Some(&'x') {
            j += 2;
        }
    } else {
        j += 1;
    }
    if b.get(j) == Some(&'\'') {
        j += 1;
    }
    j
}

/// Disambiguate `'a'` (char) from `'a` (lifetime) at `i` (the quote).
/// Returns the index one past the produced token.
fn lex_quote_or_lifetime(b: &[char], i: usize, line: u32, out: &mut Vec<Tok>) -> usize {
    let next = b.get(i + 1).copied();
    if next == Some('\\') {
        let end = lex_char_body(b, i);
        out.push(Tok {
            kind: Kind::Char,
            text: b[i..end].iter().collect(),
            line,
        });
        return end;
    }
    if let Some(c) = next {
        if c.is_alphanumeric() || c == '_' {
            // Scan the ident run; a trailing quote makes it a char.
            let mut k = i + 1;
            while k < b.len() && (b[k].is_alphanumeric() || b[k] == '_') {
                k += 1;
            }
            if b.get(k) == Some(&'\'') {
                out.push(Tok {
                    kind: Kind::Char,
                    text: b[i..=k].iter().collect(),
                    line,
                });
                return k + 1;
            }
            out.push(Tok {
                kind: Kind::Lifetime,
                text: b[i + 1..k].iter().collect(),
                line,
            });
            return k;
        }
        if c == '\'' {
            // `''` — malformed; emit punct and move on.
            out.push(Tok {
                kind: Kind::Punct,
                text: "'".into(),
                line,
            });
            return i + 1;
        }
        // Any other single character closed by a quote is still a char
        // literal — `'"'`, `'('`, `' '` — and the `"` case matters:
        // treating it as punct would leak the quote into string state.
        if b.get(i + 2) == Some(&'\'') {
            out.push(Tok {
                kind: Kind::Char,
                text: b[i..i + 3].iter().collect(),
                line,
            });
            return i + 3;
        }
    }
    out.push(Tok {
        kind: Kind::Punct,
        text: "'".into(),
        line,
    });
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        scan(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_code_like_text() {
        let toks = kinds(r#"let x = "Vec::new() // not code";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == Kind::Str && t.contains("Vec::new")));
        assert!(!toks.iter().any(|(k, t)| *k == Kind::Ident && t == "Vec"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"let s = r#"a "quoted" b"#;"###);
        let s = toks.iter().find(|(k, _)| *k == Kind::Str);
        assert_eq!(
            s.map(|(_, t)| t.as_str()),
            Some(r#"a "quoted" b"#),
            "raw string contents survive"
        );
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        assert!(toks.iter().any(|(k, t)| *k == Kind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == Kind::Char && t == "'x'"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let toks = scan("/* a /* b */ c */\nfn x() {}\n");
        assert_eq!(toks[0].kind, Kind::BlockComment);
        let f = toks
            .iter()
            .find(|t| t.text == "fn")
            .expect("fn token survives the comment");
        assert_eq!(f.line, 2);
    }

    #[test]
    fn line_comments_capture_text() {
        let toks = scan("// lint:allow(determinism): trace-only timing\nlet y = 1;");
        assert_eq!(toks[0].kind, Kind::LineComment);
        assert!(toks[0].text.contains("lint:allow"));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn char_literal_holding_a_quote_does_not_open_a_string() {
        let toks = scan("let q = '\"'; let s = \"after\";\n");
        assert!(toks
            .iter()
            .any(|t| t.kind == Kind::Char && t.text == "'\"'"));
        assert!(toks
            .iter()
            .any(|t| t.kind == Kind::Str && t.text == "after"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks.iter().any(|(k, t)| *k == Kind::Ident && t == "fn"));
    }

    #[test]
    fn byte_strings_and_chars() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'\n';"#);
        assert!(toks.iter().any(|(k, t)| *k == Kind::Str && t == "bytes"));
        assert!(toks.iter().any(|(k, _)| *k == Kind::Char));
    }
}
