//! Capacity planning: the Section 5 design exercise. Given a working set
//! of movies and a target number of concurrent viewers, compare the four
//! schemes' cost, memory, bandwidth overhead, and reliability — and pick
//! the cheapest configuration, as the paper does for 1200 and 1500
//! streams.
//!
//! Run with: `cargo run --example capacity_planning [streams]`

use ft_media_server::analysis::{
    fig9_rows, table_rows, CostModel, SchemeKind, SchemeParams, SystemParams,
};

fn main() {
    let required: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1200.0);

    let sys = SystemParams::paper_table1();
    let model = CostModel::paper_fig9();

    println!("=== Metrics at C = 5, D = 100 (the paper's Table 2) ===\n");
    println!(
        "{:<20} {:>8} {:>8} {:>12} {:>14} {:>8} {:>9}",
        "scheme", "stor ov", "bw ov", "MTTF (yr)", "MTTDS (yr)", "streams", "buffers"
    );
    for row in table_rows(&sys, &SchemeParams::paper_tables(5)) {
        println!(
            "{:<20} {:>7.1}% {:>7.1}% {:>12.1} {:>14.1} {:>8} {:>9}",
            row.scheme.to_string(),
            row.storage_overhead * 100.0,
            row.bandwidth_overhead * 100.0,
            row.mttf_years,
            row.mttds_years,
            row.streams,
            row.buffers_tracks
        );
    }

    println!(
        "\n=== Cost sweep for W = {:.0} GB (Figure 9) ===\n",
        model.working_set_mb / 1000.0
    );
    println!(
        "{:>3} {:>7} {:>11} {:>11} {:>11} {:>11}",
        "C", "disks", "SR $", "SG $", "NC $", "IB $"
    );
    for row in fig9_rows(&sys, &model, 2..=10) {
        println!(
            "{:>3} {:>7.1} {:>11.0} {:>11.0} {:>11.0} {:>11.0}",
            row.c, row.disks, row.cost[0], row.cost[1], row.cost[2], row.cost[3]
        );
    }

    println!("\n=== Cheapest configuration for {required:.0} concurrent streams ===\n");
    let mut winner: Option<(SchemeKind, usize, f64)> = None;
    for scheme in SchemeKind::ALL {
        match model.cheapest_for_streams(&sys, scheme, 2..=10, required, SchemeParams::paper_fig9) {
            Some((c, cost)) => {
                println!(
                    "{:<20} feasible at C = {c:<2} for ${cost:>9.0}",
                    scheme.to_string()
                );
                if winner.map(|(_, _, w)| cost < w).unwrap_or(true) {
                    winner = Some((scheme, c, cost));
                }
            }
            None => println!(
                "{:<20} cannot reach {required:.0} streams at this working set",
                scheme.to_string()
            ),
        }
    }
    match winner {
        Some((scheme, c, cost)) => println!(
            "\n→ deploy {scheme} with parity groups of {c}: ${cost:.0}.\n  \
             (The paper: ~1200 streams favor the memory-light clustered schemes;\n  \
             ~1500 streams force Improved-bandwidth, which alone turns parity-disk\n  \
             bandwidth into stream capacity.)"
        ),
        None => println!("\n→ no scheme reaches the target; buy more disks."),
    }
}
