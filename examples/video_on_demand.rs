//! Movie-on-demand workload: a catalog of MPEG-1 features with Zipf
//! popularity, Poisson viewer arrivals, and a mid-run disk failure —
//! compared across all four schemes of the paper.
//!
//! All schemes replay the *same* arrival trace (generated once in real
//! time and mapped onto each scheme's cycle grid), so the buffer-peak and
//! hiccup columns are directly comparable.
//!
//! Run with: `cargo run --release --example video_on_demand`

use ft_media_server::disk::DiskId;
use ft_media_server::layout::{BandwidthClass, ObjectId};
use ft_media_server::sim::{DataMode, FailureEvent, Zipf};
use ft_media_server::{Scheme, ServerBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated wall-clock horizon.
const HORIZON_SECS: f64 = 160.0;
/// Mean viewer arrivals per simulated second.
const ARRIVALS_PER_SEC: f64 = 0.3;
/// Titles in the catalog.
const TITLES: usize = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One arrival trace shared by every scheme: (time in seconds, title).
    let mut rng = StdRng::seed_from_u64(2026);
    let zipf = Zipf::new(TITLES, 0.271);
    let mut arrivals: Vec<(f64, usize)> = Vec::new();
    let mut t = 0.0;
    loop {
        t += -(1.0 - rng.gen::<f64>()).ln() / ARRIVALS_PER_SEC;
        if t >= HORIZON_SECS {
            break;
        }
        arrivals.push((t, zipf.sample(&mut rng)));
    }
    println!("{} viewers arrive over {HORIZON_SECS} s\n", arrivals.len());

    println!(
        "{:<20} {:>8} {:>10} {:>9} {:>8} {:>9} {:>10}",
        "scheme", "finished", "delivered", "reconstr", "hiccups", "rejected", "buf peak"
    );
    for scheme in Scheme::ALL {
        let disks = if scheme == Scheme::ImprovedBandwidth {
            8
        } else {
            10
        };
        let mut builder = ServerBuilder::new(scheme)
            .disks(disks)
            .parity_group(5)
            // Metadata-only keeps the long run fast; the verified mode is
            // exercised by the test suite.
            .data_mode(DataMode::MetadataOnly);
        // A small catalog of shorts (full features run for thousands of
        // cycles; shorts keep the example brisk without changing logic).
        for i in 0..TITLES {
            builder = builder.movie(format!("title-{i}"), 0.4, BandwidthClass::Mpeg1);
        }
        let mut server = builder.build()?;

        let t_cyc = server.cycle_config().t_cyc().as_secs();
        let cycles = (HORIZON_SECS / t_cyc) as u64;
        let fail_cycle = cycles / 2;
        let repair_cycle = cycles * 3 / 4;

        let mut rejected = 0u64;
        let mut next_arrival = 0usize;
        for cycle in 0..cycles {
            while next_arrival < arrivals.len()
                && arrivals[next_arrival].0 < (cycle + 1) as f64 * t_cyc
            {
                let title = ObjectId(arrivals[next_arrival].1 as u64);
                if server.admit(title).is_err() {
                    rejected += 1;
                }
                next_arrival += 1;
            }
            if cycle == fail_cycle {
                server.inject(FailureEvent::fail(server.cycle(), DiskId(1)))?;
            }
            if cycle == repair_cycle {
                server.repair_disk(DiskId(1))?;
            }
            server.step()?;
        }

        let m = server.metrics();
        println!(
            "{:<20} {:>8} {:>10} {:>9} {:>8} {:>9} {:>10}",
            scheme.to_string(),
            m.streams_finished,
            m.delivered,
            m.reconstructed,
            m.total_hiccups(),
            rejected,
            m.buffer_peak,
        );
    }
    println!(
        "\nSame viewers, same failure window. The buffer-peak column shows the\n\
         paper's memory hierarchy per concurrent stream: SR buffers 2C tracks,\n\
         SG about half that (staggered groups), NC just 2, and IB 2(C−1).\n\
         NC pays instead with a bounded number of transition hiccups."
    );
    Ok(())
}
