//! Quickstart: build a Streaming RAID server, play a movie, kill a disk
//! mid-playback, and observe that every track is still delivered on time
//! via on-the-fly parity reconstruction.
//!
//! Run with: `cargo run --example quickstart`

use ft_media_server::disk::DiskId;
use ft_media_server::layout::BandwidthClass;
use ft_media_server::sim::FailureEvent;
use ft_media_server::{Scheme, ServerBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small farm: 10 disks in two clusters of 5 (4 data + 1 parity),
    // Table 1 disk parameters, one 2-minute MPEG-1 short.
    let mut server = ServerBuilder::new(Scheme::StreamingRaid)
        .disks(10)
        .parity_group(5)
        .movie("big-buck-bunny", 2.0, BandwidthClass::Mpeg1)
        .build()?;

    println!("scheme            : {}", server.scheme());
    println!("cycle length      : {}", server.cycle_config().t_cyc());
    println!(
        "slots per disk    : {}",
        server.cycle_config().slots_per_disk()
    );
    println!("stream capacity   : {}", server.stream_capacity());

    let movie = server.objects()[0];
    let viewer = server.admit(movie)?;
    println!("admitted viewer   : {viewer}");

    // Let playback get going, then fail a data disk.
    server.run(5)?;
    let report = server.inject(FailureEvent::fail(server.cycle(), DiskId(2)))?;
    println!(
        "disk 2 failed     : degraded clusters {:?}, catastrophic: {}",
        report.degraded_clusters, report.catastrophic
    );

    // Play the movie to the end.
    while server.active_streams() > 0 {
        server.step()?;
    }

    let m = server.metrics();
    println!("tracks delivered  : {}", m.delivered);
    println!("  verified        : {}", m.verified);
    println!("  reconstructed   : {}", m.reconstructed);
    println!("hiccups           : {}", m.total_hiccups());
    println!("disk utilization  : {:.1}%", {
        let t = server.cycle_config().t_cyc();
        m.utilization(t, 10) * 100.0
    });
    assert_eq!(m.total_hiccups(), 0, "Streaming RAID masks single failures");
    println!("\nno viewer noticed the failure — that is the point of the paper.");
    Ok(())
}
