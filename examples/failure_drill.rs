//! Failure drill: replays the paper's Figure 6 and Figure 7 scenarios —
//! the Non-clustered scheme's simple vs delayed transition to degraded
//! mode — and narrates the schedule cycle by cycle.
//!
//! Run with: `cargo run --example failure_drill`

use ft_media_server::disk::{Bandwidth, DiskId, DiskParams};
use ft_media_server::layout::{
    BandwidthClass, Catalog, ClusteredLayout, Geometry, MediaObject, ObjectId,
};
use ft_media_server::scenario::{find, ScenarioRunner};
use ft_media_server::sched::{
    CycleConfig, NonClusteredScheduler, SchemeScheduler, TransitionPolicy,
};
use ft_media_server::sim::trace;
use ft_media_server::telemetry::{dashboard, jsonl, Level, Recorder};
use ft_media_server::Parallelism;
use std::collections::BTreeMap;

/// Stream names as in the figures.
const NAMES: [(u64, &str); 8] = [
    (0, "U"),
    (1, "W"),
    (2, "Y"),
    (3, "A"),
    (4, "C"),
    (5, "E"),
    (6, "G"),
    (7, "I"),
];

fn build(policy: TransitionPolicy) -> NonClusteredScheduler {
    // One cluster of 5 disks (4 data + parity), exactly one read slot per
    // disk per cycle — the figures' setting.
    let geo = Geometry::clustered(5, 5).unwrap();
    let mut catalog = Catalog::new(ClusteredLayout::new(geo), 10_000);
    for (id, name) in NAMES {
        catalog
            .add(MediaObject::new(
                ObjectId(id),
                name,
                4,
                BandwidthClass::Custom(Bandwidth::from_megabytes(1.0)),
            ))
            .unwrap();
    }
    let cfg = CycleConfig::new(
        DiskParams::paper_table1(),
        Bandwidth::from_megabytes(1.0),
        1,
        1,
    );
    NonClusteredScheduler::new(cfg, catalog, policy, 1)
}

fn drill(policy: TransitionPolicy) {
    println!("== {policy:?} transition (disk 2 fails before cycle 4) ==\n");
    let mut sched = build(policy);
    let names: BTreeMap<u64, &str> = NAMES.into_iter().collect();

    // Collect the scheduler's telemetry while the drill runs: the
    // mode-transition events and per-reason loss counters replace the
    // hand-tallied summaries this example used to print.
    let recorder = Recorder::new(Level::Info);
    let guard = recorder.install();

    // Streams staggered one position apart, as in Figure 5.
    let starts = [
        (0u64, 1u64),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 8),
    ];
    let mut plans = Vec::new();
    let mut lost = Vec::new();
    for t in 0..14u64 {
        for &(obj, at) in &starts {
            if at == t {
                sched.admit(ObjectId(obj), at).unwrap();
            }
        }
        if t == 4 {
            let report = sched.on_disk_failure(DiskId(2), 4, false);
            println!(
                "cycle 4: DISK 2 FAILS — {} track(s) immediately unrecoverable\n",
                report.lost.len()
            );
        }
        let plan = sched.plan_cycle(t);
        for h in &plan.hiccups {
            lost.push(format!(
                "{}[{}]",
                names
                    .get(&h.addr.object.0)
                    .map(|n| format!("{n}{:?}", h.addr.kind))
                    .unwrap_or_default(),
                h.reason
            ));
        }
        plans.push(plan);
    }

    drop(guard);
    println!("{}", trace::render_schedule(&plans, 5, &names));
    println!("lost tracks: {}", lost.join(", "));

    // The same story as recorded: transitions in the JSONL export
    // schema, losses from the metrics registry.
    let mut jl = Vec::new();
    for e in recorder
        .take_events()
        .iter()
        .filter(|e| e.name == "mode_transition")
    {
        jsonl::write_event(&mut jl, e).unwrap();
    }
    print!("{}", String::from_utf8(jl).unwrap());
    print!("{}", dashboard::render(&recorder.snapshot()));
    println!();
}

fn main() {
    println!(
        "The Non-clustered scheme reads no parity in normal mode, so a disk\n\
         failure forces a transition to degraded (group-at-a-time) reads.\n\
         The paper gives two transitions; both are replayed below.\n"
    );
    drill(TransitionPolicy::Simple);
    drill(TransitionPolicy::Delayed);
    println!(
        "Figure 6 (simple):  six tracks lost (Y1 W2 Y2 U3 W3 Y3).\n\
         Figure 7 (delayed): three tracks lost (W2 Y2 Y3) — the delayed\n\
         transition buffers a running XOR and moves reads only when needed.\n"
    );

    // The same two drills are named scenarios in the corpus: replay them
    // through the full server stack (real disks, real parity bytes) via
    // the scenario engine, which checks the exact loss counts as
    // invariants.
    println!("== the same drills through the scenario engine ==\n");
    let runner = ScenarioRunner::new(Parallelism::Sequential);
    for name in ["nc-transition-simple", "nc-transition-delayed"] {
        let case = find(name, true).expect("corpus scenario");
        for report in runner.run_case(&case) {
            print!("{}", report.render());
        }
    }
}
