//! Mixed catalog: MPEG-1 and MPEG-2 titles on one farm.
//!
//! The paper's Section 1 sizes a 1000-disk farm as "approximately 6500
//! concurrent MPEG-2 users or 20,000 MPEG-1 users or some combination of
//! the two", and the cycle model fixes one `b₀` per logical server — so a
//! mixed catalog is served by *partitioning* the farm, one sub-server per
//! bandwidth class. This example sizes the split analytically
//! (`partition_classes`), builds both sub-servers, and runs them side by
//! side through a shared failure drill.
//!
//! Run with: `cargo run --release --example mixed_catalog`

use ft_media_server::analysis::{
    partition_classes, ClassDemand, SchemeKind, SchemeParams, SystemParams,
};
use ft_media_server::disk::{Bandwidth, DiskId};
use ft_media_server::layout::{BandwidthClass, MediaObject, ObjectId};
use ft_media_server::sim::{DataMode, FailureEvent};
use ft_media_server::{MultimediaServer, Scheme, ServerBuilder};

/// Round a fractional disk requirement up to whole clusters of C.
fn whole_clusters(disks: f64, c: usize) -> usize {
    ((disks / c as f64).ceil() as usize).max(1) * c
}

fn build_class(disks: usize, class: BandwidthClass, titles: u64, tracks: u64) -> MultimediaServer {
    let mut b = ServerBuilder::new(Scheme::StreamingRaid)
        .disks(disks)
        .parity_group(5)
        .data_mode(DataMode::MetadataOnly);
    for i in 0..titles {
        b = b.object(MediaObject::new(
            ObjectId(i),
            format!("t{i}"),
            tracks,
            class,
        ));
    }
    b.build().expect("valid class server")
}

fn main() {
    // Demand: 60 MPEG-1 viewers and 20 MPEG-2 viewers.
    let sys = SystemParams::paper_table1();
    let p = SchemeParams::paper_tables(5);
    let demands = [
        ClassDemand {
            b0: Bandwidth::mpeg1(),
            required_streams: 60.0,
        },
        ClassDemand {
            b0: Bandwidth::mpeg2(),
            required_streams: 20.0,
        },
    ];
    let allocs = partition_classes(&sys, SchemeKind::StreamingRaid, &p, &demands);
    println!("analytic split (SR, C = 5):");
    for a in &allocs {
        println!(
            "  {:>5.0} streams @ {} → {:>5.1} disks ({} whole clusters)",
            a.required_streams,
            a.b0,
            a.total_disks,
            whole_clusters(a.total_disks, 5) / 5
        );
    }

    let d1 = whole_clusters(allocs[0].total_disks, 5);
    let d2 = whole_clusters(allocs[1].total_disks, 5);
    let mut mpeg1 = build_class(d1, BandwidthClass::Mpeg1, 4, 600);
    let mut mpeg2 = build_class(d2, BandwidthClass::Mpeg2, 4, 600);

    // Admit the demanded viewers (spreading over cycles as needed).
    for (server, viewers) in [(&mut mpeg1, 60usize), (&mut mpeg2, 20usize)] {
        let mut admitted = 0;
        while admitted < viewers {
            let title = ObjectId((admitted % 4) as u64);
            if server.admit(title).is_ok() {
                admitted += 1;
            } else {
                server.step().unwrap();
            }
        }
    }
    println!(
        "\nadmitted: {} MPEG-1 viewers on {d1} disks, {} MPEG-2 viewers on {d2} disks",
        mpeg1.active_streams(),
        mpeg2.active_streams()
    );

    // One disk dies in each partition; both mask it.
    mpeg1
        .inject(FailureEvent::fail(mpeg1.cycle(), DiskId(1)))
        .unwrap();
    mpeg2
        .inject(FailureEvent::fail(mpeg2.cycle(), DiskId(2)))
        .unwrap();
    // Run both for the same simulated wall time (~80 s).
    for server in [&mut mpeg1, &mut mpeg2] {
        let cycles = (80.0 / server.cycle_config().t_cyc().as_secs()) as u64;
        server.run(cycles).unwrap();
    }

    println!(
        "\n{:<8} {:>10} {:>12} {:>9} {:>9}",
        "class", "delivered", "reconstructed", "hiccups", "util %"
    );
    for (label, server, disks) in [("MPEG-1", &mpeg1, d1), ("MPEG-2", &mpeg2, d2)] {
        let m = server.metrics();
        println!(
            "{:<8} {:>10} {:>12} {:>9} {:>8.1}%",
            label,
            m.delivered,
            m.reconstructed,
            m.total_hiccups(),
            m.utilization(server.cycle_config().t_cyc(), disks) * 100.0
        );
    }
    println!(
        "\nEach class runs at its own cycle length on its own clusters; the\n\
         3:1 bandwidth ratio shows up directly in the disk split — the §1\n\
         yardstick in miniature."
    );
}
