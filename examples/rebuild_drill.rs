//! Rebuild drill: the third operating mode. A disk dies mid-service, the
//! array runs degraded, and a spare is reloaded — first from parity using
//! only idle bandwidth, then (the catastrophe path) from tertiary storage
//! at tape speed. Also shows Section 4's adaptive parity prefetch turning
//! the Improved-bandwidth scheme's one unmaskable mid-cycle hiccup into a
//! clean reconstruction.
//!
//! Run with: `cargo run --example rebuild_drill`

use ft_media_server::disk::DiskId;
use ft_media_server::layout::{BandwidthClass, MediaObject, ObjectId};
use ft_media_server::sim::{DataMode, FailureEvent};
use ft_media_server::telemetry::{dashboard, Level, Recorder};
use ft_media_server::{Scheme, ServerBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One recorder across all three parts: the closing dashboard shows
    // the drill's full story straight from the metrics registry.
    let recorder = Recorder::new(Level::Info);
    let _guard = recorder.install();

    // --- Part 1: parity rebuild under load (Streaming RAID) ---
    let mut server = ServerBuilder::new(Scheme::StreamingRaid)
        .disks(10)
        .parity_group(5)
        .object(MediaObject::new(
            ObjectId(0),
            "catalog",
            4_000,
            BandwidthClass::Mpeg1,
        ))
        .data_mode(DataMode::MetadataOnly)
        .build()?;
    let movie = server.objects()[0];
    for _ in 0..8 {
        server.admit(movie)?;
    }
    server.run(4)?;
    server.inject(FailureEvent::fail(server.cycle(), DiskId(2)))?;
    println!("disk 2 failed; streams continue via on-the-fly reconstruction");
    server.run(4)?;
    server.start_parity_rebuild(DiskId(2))?;
    println!("spare installed; rebuilding from parity with idle slots only:");
    let mut cycles = 0u64;
    while server.metrics().rebuilds_completed == 0 {
        server.step()?;
        cycles += 1;
        if let Some(r) = server.simulator().rebuilds().active().first() {
            if cycles.is_multiple_of(2) {
                println!("  cycle {:>3}: {r}", server.simulator().cycle());
            }
        }
    }
    // The summary comes from the telemetry counters, which mirror
    // `server.metrics()` exactly.
    let snap = recorder.snapshot();
    println!(
        "rebuild done in {cycles} cycles; hiccups: {}, reconstructions: {}, \
         rebuild reads: {}\n",
        snap.counter_total("sim.hiccups"),
        snap.counter_total("sim.reconstructed"),
        snap.counter_total("rebuild.idle_slots_spent"),
    );

    // --- Part 2: tertiary rebuild (tape speed) ---
    let mut server = ServerBuilder::new(Scheme::StreamingRaid)
        .disks(10)
        .parity_group(5)
        .object(MediaObject::new(
            ObjectId(0),
            "catalog",
            4_000,
            BandwidthClass::Mpeg1,
        ))
        .data_mode(DataMode::MetadataOnly)
        .build()?;
    server.inject(FailureEvent::fail(server.cycle(), DiskId(2)))?;
    // The paper's footnote: a $1000 tape drive moves ~4 Mb/s ≈ 1 track
    // (50 KB) per MPEG-1 cycle; a disk moves ~8x that.
    server.start_tertiary_rebuild(DiskId(2), 1)?;
    let mut tape_cycles = 0u64;
    while server.metrics().rebuilds_completed == 0 {
        server.step()?;
        tape_cycles += 1;
    }
    println!(
        "tertiary rebuild of the same disk: {tape_cycles} cycles \
         ({}x slower) — why the paper calls the tape path \"very time\n\
         consuming\" and leans on parity instead.\n",
        tape_cycles / cycles.max(1)
    );

    // --- Part 3: IB mid-cycle hiccup vs adaptive parity prefetch ---
    for prefetch in [false, true] {
        let mut server = ServerBuilder::new(Scheme::ImprovedBandwidth)
            .disks(8)
            .parity_group(5)
            .parity_prefetch(prefetch)
            .movie("feature", 0.5, BandwidthClass::Mpeg1)
            .build()?;
        let movie = server.objects()[0];
        server.admit(movie)?;
        server.run(3)?;
        server.inject(FailureEvent::fail_mid_cycle(server.cycle(), DiskId(5)))?;
        while server.active_streams() > 0 {
            server.step()?;
        }
        let m = server.metrics();
        println!(
            "improved-bandwidth, parity prefetch {:>5}: {} hiccup(s), {} reconstructions",
            prefetch,
            m.total_hiccups(),
            m.reconstructed
        );
    }
    println!(
        "\nSection 4: \"Under lightly loaded conditions, the parity blocks can\n\
         be read during normal operation and the isolated hiccup avoided.\""
    );

    // Everything the three parts did, straight off the registry. The
    // per-disk service-time histograms are elided to keep this readable.
    let mut snap = recorder.snapshot();
    snap.histograms
        .retain(|(k, _)| k.name.as_ref() != "disk.service_ms");
    println!(
        "\n== telemetry dashboard (all three parts) ==\n\n{}",
        dashboard::render(&snap)
    );
    Ok(())
}
